package query_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/ingest"
	"repro/internal/mpt"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

func cityExtract(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

func newMPT(s store.Store) (core.Index, error) { return mpt.New(s), nil }

func newRepo(s store.Store) *version.Repo {
	repo := version.NewRepo(s)
	repo.RegisterLoader("MPT", func(st store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(st, root), nil
	})
	return repo
}

// buildTable loads n rows "pk-%03d" -> "g%02d|v%d" (city = i%groups) and
// commits.
func buildTable(t *testing.T, repo *version.Repo, n, groups int) *secondary.Table {
	t.Helper()
	tbl, err := secondary.Open(repo, "main", newMPT,
		secondary.Def{Attr: "city", Extract: cityExtract, New: newMPT})
	if err != nil {
		t.Fatal(err)
	}
	var batch []core.Entry
	for i := 0; i < n; i++ {
		batch = append(batch, core.Entry{
			Key:   []byte(fmt.Sprintf("pk-%03d", i)),
			Value: []byte(fmt.Sprintf("g%02d|v%d", i%groups, i)),
		})
	}
	if err := tbl.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Commit("load"); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func keys(rows []query.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(r.Key)
	}
	return out
}

func TestPlannerRoutes(t *testing.T) {
	s := store.NewMemStore()
	tbl := buildTable(t, newRepo(s), 60, 10)
	p := query.PlannerFor(query.IndexSource(tbl.Primary()), tbl)

	// Exact match routes through the index and returns the right rows.
	rows, plan, err := p.Query(query.Query{Attr: "city", Exact: []byte("g03")})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedIndex || plan.FellBack || plan.IndexClass != "MPT" {
		t.Fatalf("exact plan = %+v", plan)
	}
	if len(rows) != 6 {
		t.Fatalf("exact rows = %v", keys(rows))
	}
	for _, r := range rows {
		av, ok := cityExtract(r.Key, r.Value)
		if !ok || !bytes.Equal(av, []byte("g03")) {
			t.Fatalf("row %q value %q not in g03", r.Key, r.Value)
		}
	}
	// Sorted by primary key.
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Fatalf("rows out of key order: %v", keys(rows))
		}
	}

	// Range predicate [g03, g05) through the index.
	rows, plan, err = p.Query(query.Query{Attr: "city", Lo: []byte("g03"), Hi: []byte("g05")})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedIndex || len(rows) != 12 {
		t.Fatalf("range plan %+v, %d rows", plan, len(rows))
	}

	// Scan-only binding falls back and agrees with the index route.
	ps := query.NewPlanner(query.IndexSource(tbl.Primary())).BindAttr("city", cityExtract)
	srows, splan, err := ps.Query(query.Query{Attr: "city", Lo: []byte("g03"), Hi: []byte("g05")})
	if err != nil {
		t.Fatal(err)
	}
	if splan.UsedIndex || !splan.FellBack {
		t.Fatalf("scan plan = %+v", splan)
	}
	if len(srows) != len(rows) {
		t.Fatalf("routes disagree: index %v, scan %v", keys(rows), keys(srows))
	}
	for i := range rows {
		if !bytes.Equal(rows[i].Key, srows[i].Key) || !bytes.Equal(rows[i].Value, srows[i].Value) {
			t.Fatalf("routes disagree at %d: %q vs %q", i, rows[i].Key, srows[i].Key)
		}
	}

	// Empty and inverted ranges return nothing on both routes.
	for _, q := range []query.Query{
		{Attr: "city", Lo: []byte("g05"), Hi: []byte("g03")},
		{Attr: "city", Lo: []byte("g05"), Hi: []byte("g05")},
		{Attr: "city", Hi: []byte{}},
		{Attr: "city", Exact: []byte("no-such-city")},
	} {
		for _, eng := range []query.Engine{p, ps} {
			rows, _, err := eng.Query(q)
			if err != nil || len(rows) != 0 {
				t.Fatalf("degenerate query %+v = %v, %v", q, keys(rows), err)
			}
		}
	}

	// Limit caps the exact route, keeping the lowest primary keys.
	rows, _, err = p.Query(query.Query{Attr: "city", Exact: []byte("g03"), Limit: 2})
	if err != nil || len(rows) != 2 {
		t.Fatalf("limit rows = %v, %v", keys(rows), err)
	}
	if string(rows[0].Key) != "pk-003" || string(rows[1].Key) != "pk-013" {
		t.Fatalf("limit kept %v", keys(rows))
	}

	// Primary-key queries need no binding.
	rows, plan, err = p.Query(query.Query{Exact: []byte("pk-007")})
	if err != nil || len(rows) != 1 || plan.UsedIndex || plan.FellBack {
		t.Fatalf("pk exact = %v, %+v, %v", keys(rows), plan, err)
	}
	rows, _, err = p.Query(query.Query{Lo: []byte("pk-010"), Hi: []byte("pk-013")})
	if err != nil || len(rows) != 3 {
		t.Fatalf("pk range = %v, %v", keys(rows), err)
	}

	// Unknown attribute is an error, not a silent empty result.
	if _, _, err := p.Query(query.Query{Attr: "price", Exact: []byte("1")}); !errors.Is(err, query.ErrUnknownAttr) {
		t.Fatalf("unknown attr err = %v", err)
	}
}

// TestPlannerMasksOverlay queries through an ingest.Buffer holding
// unmerged mutations: a delete must mask the stale index hit, an
// attribute-changing overwrite must drop the row from its old attribute
// value, and after Merge the secondary catches up through a reopened
// table.
func TestPlannerMasksOverlay(t *testing.T) {
	s := store.NewMemStore()
	repo := newRepo(s)
	tbl := buildTable(t, repo, 40, 8)

	dir := t.TempDir()
	bu, err := ingest.Open(repo, ingest.Options{
		Dir:        dir,
		Branch:     "main",
		MaxEntries: 1 << 20, // never auto-merge during the test
		New:        func(st store.Store) (core.Index, error) { return mpt.New(st), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bu.Close()

	// g02 holds pk-002, pk-010, pk-018, pk-026, pk-034.
	if err := bu.Delete([]byte("pk-010")); err != nil {
		t.Fatal(err)
	}
	// Move pk-018 from g02 to g99 without merging.
	if err := bu.Put([]byte("pk-018"), []byte("g99|moved")); err != nil {
		t.Fatal(err)
	}

	p := query.PlannerFor(bu, tbl)
	rows, plan, err := p.Query(query.Query{Attr: "city", Exact: []byte("g02")})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsedIndex {
		t.Fatalf("plan = %+v", plan)
	}
	want := []string{"pk-002", "pk-026", "pk-034"}
	got := keys(rows)
	if len(got) != len(want) {
		t.Fatalf("overlay-masked rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overlay-masked rows = %v, want %v", got, want)
		}
	}

	// The moved row is invisible under its new attribute until merge: the
	// committed secondary has no g99 entry yet.
	rows, _, err = p.Query(query.Query{Attr: "city", Exact: []byte("g99")})
	if err != nil || len(rows) != 0 {
		t.Fatalf("unmerged new attribute rows = %v, %v", keys(rows), err)
	}

	// Merge, reopen the table at the new head, and the index catches up.
	if _, merged, err := bu.Merge(); err != nil || !merged {
		t.Fatalf("Merge = %v, %v", merged, err)
	}
	tbl2, err := secondary.Open(repo, "main", newMPT,
		secondary.Def{Attr: "city", Extract: cityExtract, New: newMPT})
	if err != nil {
		t.Fatal(err)
	}
	p2 := query.PlannerFor(query.IndexSource(tbl2.Primary()), tbl2)
	rows, _, err = p2.Query(query.Query{Attr: "city", Exact: []byte("g02")})
	if err != nil || len(keys(rows)) != 3 {
		t.Fatalf("post-merge g02 = %v, %v", keys(rows), err)
	}
	rows, _, err = p2.Query(query.Query{Attr: "city", Exact: []byte("g99")})
	if err != nil || len(rows) != 1 || string(rows[0].Key) != "pk-018" {
		t.Fatalf("post-merge g99 = %v, %v", keys(rows), err)
	}
}
