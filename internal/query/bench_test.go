package query_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
)

// BenchmarkNarrowQuery compares the two routes for a narrow exact-match
// predicate (5 rows out of 2000): indexed must stay far below scan in
// both time and node reads — the CI benchstat smoke watches the ratio.
func BenchmarkNarrowQuery(b *testing.B) {
	build := func(b *testing.B) (*secondary.Table, *store.CountingStore) {
		cs := store.NewCountingStore(store.NewMemStore())
		repo := newRepo(cs)
		tbl, err := secondary.Open(repo, "main", newMPT,
			secondary.Def{Attr: "city", Extract: cityExtract, New: newMPT})
		if err != nil {
			b.Fatal(err)
		}
		var batch []core.Entry
		for i := 0; i < 2000; i++ {
			batch = append(batch, core.Entry{
				Key:   []byte(fmt.Sprintf("pk-%06d", i)),
				Value: []byte(fmt.Sprintf("g%03d|v%d", i%400, i)),
			})
		}
		if err := tbl.PutBatch(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.Commit("load"); err != nil {
			b.Fatal(err)
		}
		return tbl, cs
	}
	run := func(b *testing.B, eng query.Engine, cs *store.CountingStore) {
		b.ReportAllocs()
		start := cs.NodeReads()
		for i := 0; i < b.N; i++ {
			rows, _, err := eng.Query(query.Query{Attr: "city", Exact: []byte(fmt.Sprintf("g%03d", i%400))})
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != 5 {
				b.Fatalf("rows = %d, want 5", len(rows))
			}
		}
		b.ReportMetric(float64(cs.NodeReads()-start)/float64(b.N), "nodereads/op")
	}
	b.Run("indexed", func(b *testing.B) {
		tbl, cs := build(b)
		run(b, query.PlannerFor(query.IndexSource(tbl.Primary()), tbl), cs)
	})
	b.Run("scan", func(b *testing.B) {
		tbl, cs := build(b)
		eng := query.NewPlanner(query.IndexSource(tbl.Primary())).BindAttr("city", cityExtract)
		run(b, eng, cs)
	})
}
