package plantest_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/query"
	"repro/internal/query/plantest"
	"repro/internal/secondary"
	"repro/internal/store"
)

func mptOpts() plantest.Options {
	return plantest.Options{
		New: func(s store.Store) (core.Index, error) { return mpt.New(s), nil },
		Loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
			return mpt.Load(s, root), nil
		},
		Pruned: true,
	}
}

func TestPlannerConformanceMPT(t *testing.T) {
	plantest.RunPlannerTests(t, "MPT", mptOpts())
}

func TestPlannerConformanceMBT(t *testing.T) {
	cfg := mbt.Config{Capacity: 64, Fanout: 8}
	plantest.RunPlannerTests(t, "MBT", plantest.Options{
		New: func(s store.Store) (core.Index, error) { return mbt.New(s, cfg) },
		Loader: func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
			return mbt.Load(s, cfg, root)
		},
		Pruned: false, // hash-partitioned: correct but cannot prune
	})
}

func TestPlannerConformancePOSTree(t *testing.T) {
	cfg := postree.ConfigForNodeSize(512)
	plantest.RunPlannerTests(t, "POS-Tree", plantest.Options{
		New: func(s store.Store) (core.Index, error) { return postree.New(s, cfg), nil },
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return postree.Load(s, cfg, root, height), nil
		},
		Pruned: true,
	})
}

func TestPlannerConformanceProlly(t *testing.T) {
	cfg := prolly.ConfigForNodeSize(512)
	plantest.RunPlannerTests(t, "Prolly-Tree", plantest.Options{
		New: func(s store.Store) (core.Index, error) { return prolly.New(s, cfg), nil },
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return prolly.Load(s, cfg, root, height), nil
		},
		Pruned: true,
	})
}

func TestPlannerConformanceMVMBT(t *testing.T) {
	cfg := mvmbt.ConfigForNodeSize(512)
	plantest.RunPlannerTests(t, "MVMB+-Tree", plantest.Options{
		New: func(s store.Store) (core.Index, error) { return mvmbt.New(s, cfg), nil },
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return mvmbt.Load(s, cfg, root, height), nil
		},
		Pruned: true,
	})
}

// TestHonestyNegativeControl is the battery's proof about itself: an
// engine that dutifully maintains the secondary index but never routes
// through it — every query a filtered primary scan — must FAIL
// CheckHonesty. If this test ever passes a scan-only engine, the honesty
// assertion has gone vacuous and the shipped planner's green run means
// nothing.
func TestHonestyNegativeControl(t *testing.T) {
	dishonest := func(src query.Source, tbl *secondary.Table) query.Engine {
		p := query.NewPlanner(src)
		for _, d := range tbl.Defs() {
			p.BindAttr(d.Attr, d.Extract) // scan-only: the index exists but is never used
		}
		return p
	}
	err := plantest.CheckHonesty(store.NewMemStore(), mptOpts(), dishonest)
	if err == nil {
		t.Fatal("CheckHonesty passed an engine that never routes through the index")
	}
	if !strings.Contains(err.Error(), "not routing") {
		t.Fatalf("CheckHonesty failed for the wrong reason: %v", err)
	}
}

// TestHonestyRejectsWrongRows pins the other guard: an engine that is
// cheap but wrong (returns nothing) must fail on correctness, not pass
// on node reads.
func TestHonestyRejectsWrongRows(t *testing.T) {
	empty := func(src query.Source, tbl *secondary.Table) query.Engine {
		return emptyEngine{}
	}
	err := plantest.CheckHonesty(store.NewMemStore(), mptOpts(), empty)
	if err == nil {
		t.Fatal("CheckHonesty passed an engine that returns no rows")
	}
}

type emptyEngine struct{}

func (emptyEngine) Query(q query.Query) ([]query.Row, query.Plan, error) {
	return nil, query.Plan{Attr: q.Attr, UsedIndex: true}, nil
}

// TestShippedPlannerHonest is the direct acceptance check: the shipped
// factory passes over a plain mem store for a pruning class.
func TestShippedPlannerHonest(t *testing.T) {
	if err := plantest.CheckHonesty(store.NewMemStore(), mptOpts(), plantest.ShippedEngine); err != nil {
		t.Fatal(err)
	}
}
