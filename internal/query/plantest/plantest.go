// Package plantest is the conformance battery for query planners over
// secondary indexes — the query-level sibling of core/indextest. Its
// point is honesty: a planner that claims an index route must actually
// read O(result) nodes, not O(data). RunPlannerTests cross-checks the
// two routes for correctness on every store backend, and CheckHonesty
// measures both routes on cold index instances over a
// store.CountingStore and fails unless the indexed route reads at least
// 5x fewer nodes than the scan route for narrow queries. The assertion
// cuts both ways by construction: CheckHonesty takes the engine factory
// as an argument, so the suite's own tests prove a planner that
// maintains the index but silently falls back to scanning is rejected.
package plantest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// Options describes one index class to the battery. The class backs both
// the primary and the secondary of the test table.
type Options struct {
	// New builds an empty index over s. Required.
	New func(s store.Store) (core.Index, error)
	// Loader reattaches to a committed root with the same configuration
	// New uses. Required: the battery reopens tables cold through it.
	Loader version.Loader
	// Pruned marks classes whose Range reads only the nodes overlapping
	// the bounds. Hash-partitioned classes (MBT) cannot prune: they stay
	// in the correctness battery but skip the node-read honesty check,
	// which their Range cannot pass by construction.
	Pruned bool
}

// EngineFactory builds the engine under test for one table. The shipped
// factory is ShippedEngine; the negative-control tests pass dishonest
// ones to prove the battery rejects them.
type EngineFactory func(src query.Source, tbl *secondary.Table) query.Engine

// ShippedEngine is the factory for the planner this repo actually ships:
// query.PlannerFor, every table Def bound to its secondary.
func ShippedEngine(src query.Source, tbl *secondary.Table) query.Engine {
	return query.PlannerFor(src, tbl)
}

// cityExtract derives the indexed attribute: the value prefix before
// '|'; rows without one stay out of the index (partial index).
func cityExtract(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

func cityDef(opts Options) secondary.Def {
	return secondary.Def{Attr: "city", Extract: cityExtract, New: opts.New}
}

// RunPlannerTests runs the planner battery for one index class against
// every store backend: route cross-checking on a mutated-and-committed
// table, then the node-read honesty measurement (pruning classes only).
// Run under -race to make the backend dimension meaningful.
func RunPlannerTests(t *testing.T, name string, opts Options) {
	t.Helper()
	if opts.New == nil || opts.Loader == nil {
		t.Fatal("plantest: Options.New and Options.Loader are required")
	}
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Run("Correctness", func(t *testing.T) { testCorrectness(t, opts, be.open) })
			t.Run("Honesty", func(t *testing.T) {
				if !opts.Pruned {
					t.Skip("index class cannot prune range scans (hash-partitioned)")
				}
				if err := CheckHonesty(be.open(t), opts, ShippedEngine); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// storeFactory opens one fresh store per subtest, registering cleanup
// with t.
type storeFactory func(t *testing.T) store.Store

// backends enumerates the same four store backends indextest and
// storetest certify.
func backends() []struct {
	name string
	open storeFactory
} {
	return []struct {
		name string
		open storeFactory
	}{
		{"mem", func(t *testing.T) store.Store { return store.NewMemStore() }},
		{"sharded", func(t *testing.T) store.Store { return store.NewShardedStore(0) }},
		{"disk", func(t *testing.T) store.Store {
			s, err := store.Open(store.Config{Backend: store.BackendDisk, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("open disk store: %v", err)
			}
			t.Cleanup(func() { store.Release(s) })
			return s
		}},
		{"cached", func(t *testing.T) store.Store {
			return store.NewCachedStore(store.NewMemStore(), 1<<20)
		}},
	}
}

// openTable builds a repo (loader registered under the probed class
// name) and opens the test table on branch.
func openTable(s store.Store, opts Options, branch string) (*version.Repo, *secondary.Table, error) {
	probe, err := opts.New(s)
	if err != nil {
		return nil, nil, err
	}
	repo := version.NewRepo(s)
	repo.RegisterLoader(probe.Name(), opts.Loader)
	tbl, err := secondary.Open(repo, branch, opts.New, cityDef(opts))
	if err != nil {
		return nil, nil, err
	}
	return repo, tbl, nil
}

// testCorrectness loads, mutates and commits a table, then cross-checks
// the index route against the scan route for a spread of predicates —
// including the tombstone case: rows deleted and committed must vanish
// from attribute queries on both routes.
func testCorrectness(t *testing.T, opts Options, open storeFactory) {
	_, tbl, err := openTable(open(t), opts, "main")
	if err != nil {
		t.Fatal(err)
	}
	var batch []core.Entry
	for i := 0; i < 200; i++ {
		v := fmt.Sprintf("c%02d|v%d", i%20, i)
		if i%17 == 0 {
			v = fmt.Sprintf("unindexed-%d", i) // partial-index gap
		}
		batch = append(batch, core.Entry{
			Key:   []byte(fmt.Sprintf("pk-%04d", i)),
			Value: []byte(v),
		})
	}
	if err := tbl.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Tombstones: every row of city c03 goes away before the commit.
	for i := 0; i < 200; i++ {
		if i%20 == 3 && i%17 != 0 {
			if err := tbl.Delete([]byte(fmt.Sprintf("pk-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tbl.Commit("load"); err != nil {
		t.Fatal(err)
	}

	indexed := ShippedEngine(query.IndexSource(tbl.Primary()), tbl)
	scan := query.NewPlanner(query.IndexSource(tbl.Primary())).BindAttr("city", cityExtract)

	queries := []query.Query{
		{Attr: "city", Exact: []byte("c05")},
		{Attr: "city", Exact: []byte("c03")},          // fully tombstoned
		{Attr: "city", Exact: []byte("no-such-city")}, // absent value
		{Attr: "city", Lo: []byte("c05"), Hi: []byte("c08")},
		{Attr: "city", Lo: []byte("c18"), Hi: nil},           // unbounded above
		{Attr: "city", Lo: nil, Hi: []byte("c02")},           // unbounded below
		{Attr: "city", Lo: nil, Hi: nil},                     // whole attribute
		{Attr: "city", Lo: []byte("c08"), Hi: []byte("c05")}, // inverted
		{Attr: "city", Lo: []byte("c05"), Hi: []byte("c05")}, // degenerate
		{Attr: "city", Hi: []byte{}},                         // empty hi
		{Attr: "city", Exact: []byte("c05"), Limit: 3},       // capped exact
	}
	for _, q := range queries {
		irows, iplan, err := indexed.Query(q)
		if err != nil {
			t.Fatalf("indexed %+v: %v", q, err)
		}
		if !iplan.UsedIndex || iplan.FellBack {
			t.Fatalf("indexed %+v reported plan %+v", q, iplan)
		}
		srows, splan, err := scan.Query(q)
		if err != nil {
			t.Fatalf("scan %+v: %v", q, err)
		}
		if splan.UsedIndex || !splan.FellBack {
			t.Fatalf("scan %+v reported plan %+v", q, splan)
		}
		if len(irows) != len(srows) {
			t.Fatalf("routes disagree on %+v: index %d rows, scan %d rows", q, len(irows), len(srows))
		}
		for i := range irows {
			if !bytes.Equal(irows[i].Key, srows[i].Key) || !bytes.Equal(irows[i].Value, srows[i].Value) {
				t.Fatalf("routes disagree on %+v at row %d: %q vs %q", q, i, irows[i].Key, srows[i].Key)
			}
		}
		// Spot-check the predicate actually holds on index-route rows.
		for _, r := range irows {
			av, ok := cityExtract(r.Key, r.Value)
			if !ok || !q.Matches(av) {
				t.Fatalf("row %q (value %q) fails predicate %+v", r.Key, r.Value, q)
			}
		}
	}

	// Tombstoned city is truly empty.
	rows, _, err := indexed.Query(query.Query{Attr: "city", Exact: []byte("c03")})
	if err != nil || len(rows) != 0 {
		t.Fatalf("tombstoned city returned %d rows, %v", len(rows), err)
	}
	// Primary-key queries and unknown attributes behave.
	rows, _, err = indexed.Query(query.Query{Exact: []byte("pk-0005")})
	if err != nil || len(rows) != 1 {
		t.Fatalf("pk query = %d rows, %v", len(rows), err)
	}
	if _, _, err := indexed.Query(query.Query{Attr: "price", Exact: []byte("9")}); !errors.Is(err, query.ErrUnknownAttr) {
		t.Fatalf("unknown attr err = %v", err)
	}
}

// Honesty-measurement shape: cities hold honestyRowsPer consecutive
// primary keys each, so the narrow result set is small against the
// honestyRows total whatever the node size.
const (
	honestyRows    = 2400
	honestyRowsPer = 6
)

func honestyRow(i int) core.Entry {
	return core.Entry{
		Key:   []byte(fmt.Sprintf("pk-%06d", i)),
		Value: []byte(fmt.Sprintf("city-%04d|%030d", i/honestyRowsPer, i)),
	}
}

// CheckHonesty is the node-read accounting assertion, exported so tests
// can prove it rejects dishonest engines. It builds a committed table
// over a store.CountingStore, then measures two cold table instances:
// one queried through the factory's engine, one through the scan-only
// fallback route. It returns an error unless the factory's engine
// produced the correct rows AND read at least 5x fewer nodes than the
// scan for the same narrow queries (one exact match of 6 rows, one
// 3-value range of 18 rows, out of 2400).
//
// Two separately-opened instances make both measurements cold: each
// starts with empty decoded-node caches, so every node visited reaches
// the store and the counter. A planner that routes through the secondary
// reads O(result) nodes; one that scans reads the whole primary once.
func CheckHonesty(s store.Store, opts Options, factory EngineFactory) error {
	cs := store.NewCountingStore(s)
	repo, tbl, err := openTable(cs, opts, "honesty")
	if err != nil {
		return err
	}
	batch := make([]core.Entry, honestyRows)
	oracle := make(map[string][]string) // city -> sorted pks
	for i := range batch {
		batch[i] = honestyRow(i)
		av, _ := cityExtract(batch[i].Key, batch[i].Value)
		oracle[string(av)] = append(oracle[string(av)], string(batch[i].Key))
	}
	if err := tbl.PutBatch(batch); err != nil {
		return err
	}
	if _, err := tbl.Commit("honesty load"); err != nil {
		return err
	}

	exact := query.Query{Attr: "city", Exact: []byte("city-0123")}
	rng := query.Query{Attr: "city", Lo: []byte("city-0100"), Hi: []byte("city-0103")}
	wantExact := oracle["city-0123"]
	wantRange := append(append(append([]string(nil),
		oracle["city-0100"]...), oracle["city-0101"]...), oracle["city-0102"]...)

	measure := func(eng query.Engine) (int64, error) {
		start := cs.NodeReads()
		rows, _, err := eng.Query(exact)
		if err != nil {
			return 0, err
		}
		if err := matchRows(rows, wantExact); err != nil {
			return 0, fmt.Errorf("exact query %w", err)
		}
		rows, _, err = eng.Query(rng)
		if err != nil {
			return 0, err
		}
		if err := matchRows(rows, wantRange); err != nil {
			return 0, fmt.Errorf("range query %w", err)
		}
		return cs.NodeReads() - start, nil
	}

	// Cold instance one: the engine under test.
	_, tblA, err := openTable2(repo, opts, "honesty")
	if err != nil {
		return err
	}
	indexReads, err := measure(factory(query.IndexSource(tblA.Primary()), tblA))
	if err != nil {
		return fmt.Errorf("plantest: engine under test: %w", err)
	}
	if indexReads == 0 {
		return errors.New("plantest: engine read no nodes; the counter is not wired up")
	}

	// Cold instance two: the scan baseline.
	_, tblB, err := openTable2(repo, opts, "honesty")
	if err != nil {
		return err
	}
	scanEng := query.NewPlanner(query.IndexSource(tblB.Primary())).BindAttr("city", cityExtract)
	scanReads, err := measure(scanEng)
	if err != nil {
		return fmt.Errorf("plantest: scan baseline: %w", err)
	}

	if scanReads < 5*indexReads {
		return fmt.Errorf(
			"plantest: narrow queries read %d nodes against a %d-node scan baseline (want >= 5x reduction): the engine is not routing through the index",
			indexReads, scanReads)
	}
	return nil
}

// openTable2 opens one more cold table instance on an existing repo.
func openTable2(repo *version.Repo, opts Options, branch string) (*version.Repo, *secondary.Table, error) {
	tbl, err := secondary.Open(repo, branch, opts.New, cityDef(opts))
	if err != nil {
		return nil, nil, err
	}
	return repo, tbl, nil
}

// matchRows compares result rows against the expected primary keys (rows
// come back key-sorted; so are the oracles by construction).
func matchRows(rows []query.Row, want []string) error {
	if len(rows) != len(want) {
		return fmt.Errorf("returned %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if string(r.Key) != want[i] {
			return fmt.Errorf("row %d = %q, want %q", i, r.Key, want[i])
		}
	}
	return nil
}
