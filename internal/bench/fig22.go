package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forkbase"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/workload"
)

// Fig22 reproduces Figure 22: Forkbase (POS-Tree) versus Noms (Prolly
// Tree) served through identical client/server plumbing. Both use 4KB
// nodes and a 67-byte window, Noms' defaults (§5.6.2); the difference under
// measurement is the internal-layer boundary detection — child-hash pattern
// matching versus re-rolling a window over serialized entries.
func Fig22(sc Scale) ([]*Table, error) {
	posCfg := postree.ConfigForNodeSize(4096)
	posCfg.Chunk.Window = 67
	proCfg := prolly.ConfigForNodeSize(4096)

	systems := []servedCandidate{
		{
			name: "Forkbase",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return postree.New(s, posCfg), nil
			},
			loader: func(s store.Store, root hash.Hash, height int) core.Index {
				return postree.Load(s, posCfg, root, height)
			},
		},
		{
			name: "Noms",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return prolly.New(s, proCfg), nil
			},
			loader: func(s store.Store, root hash.Hash, height int) core.Index {
				return prolly.Load(s, proCfg, root, height)
			},
		},
	}
	read := &Table{
		ID:      "Figure 22(a)",
		Title:   "Forkbase vs Noms read throughput (Kops/s)",
		XLabel:  "#Records",
		Columns: []string{"Forkbase", "Noms"},
		Note:    "4KB nodes, 67-byte window (Noms defaults)",
	}
	write := &Table{
		ID:      "Figure 22(b)",
		Title:   "Forkbase vs Noms write throughput (Kops/s)",
		XLabel:  "#Records",
		Columns: []string{"Forkbase", "Noms"},
	}
	for _, n := range sc.YCSBCounts {
		readCells := make([]string, 0, 2)
		writeCells := make([]string, 0, 2)
		for _, sys := range systems {
			rt, wt, err := fig22Cell(sc, sys, n)
			if err != nil {
				return nil, fmt.Errorf("fig22 %s n=%d: %w", sys.name, n, err)
			}
			readCells = append(readCells, f1(rt/1000))
			writeCells = append(writeCells, f1(wt/1000))
		}
		read.AddRow(fmt.Sprint(n), readCells...)
		write.AddRow(fmt.Sprint(n), writeCells...)
	}
	return []*Table{read, write}, nil
}

func fig22Cell(sc Scale, sys servedCandidate, n int) (readTput, writeTput float64, err error) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: n, Seed: 22})
	idx, err := sys.new()
	if err != nil {
		return 0, 0, err
	}
	defer ReleaseIndex(idx) // runs after srv.Close: handlers are done
	idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		return 0, 0, err
	}
	srv := forkbase.NewServlet(idx)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	cli, err := forkbase.Dial(addr, sys.loader, clientCacheFor(sc))
	if err != nil {
		return 0, 0, err
	}
	defer cli.Close()

	// Paper protocol: initialize with n records, then measure 10K-record
	// read and write workloads (scaled to sc.Ops).
	readOps := sc.Ops
	z := workload.NewZipfian(uint64(n), 0, 2222)
	start := time.Now()
	for i := 0; i < readOps; i++ {
		key := y.Key(int(z.Next()))
		if _, ok, err := cli.Get(key); err != nil {
			return 0, 0, err
		} else if !ok {
			return 0, 0, fmt.Errorf("key %q missing", key)
		}
	}
	readTput = float64(readOps) / time.Since(start).Seconds()

	writeOps := sc.Ops
	// Writes land per small batch (Noms' API commits batches too); keep
	// batches modest so chunking work dominates over network framing.
	const writeBatch = 100
	batch := make([]core.Entry, 0, writeBatch)
	start = time.Now()
	for i := 0; i < writeOps; i++ {
		id := int(z.Next())
		batch = append(batch, core.Entry{Key: y.Key(id), Value: y.Value(id, 9000+i)})
		if len(batch) >= writeBatch {
			if err := cli.PutBatch(batch); err != nil {
				return 0, 0, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := cli.PutBatch(batch); err != nil {
			return 0, 0, err
		}
	}
	writeTput = float64(writeOps) / time.Since(start).Seconds()
	return readTput, writeTput, nil
}
