package bench

import "repro/internal/postree"

// Fig20 reproduces Figure 20: POS-Tree with the Recursively Identical
// property disabled (every node copied per update) shares nothing between
// versions — both ratios collapse to zero.
func Fig20(sc Scale) ([]*Table, error) {
	return ablationTables(sc, "Figure 20",
		"Recursively identical", "Non-recursively-identical",
		postree.AblationNoRecursiveIdentity)
}
