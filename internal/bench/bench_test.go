package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale aliases the exported TinyScale for the in-package tests.
func tinyScale() Scale { return TinyScale() }

func runExperiment(t *testing.T, name string) []*Table {
	t.Helper()
	exp, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := exp.Run(tinyScale())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", name)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", name, tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r.Cells) != len(tb.Columns) {
				t.Fatalf("%s table %q row %q: %d cells for %d columns",
					name, tb.ID, r.X, len(r.Cells), len(tb.Columns))
			}
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatalf("%s: printed table missing ID", name)
		}
	}
	return tables
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestFig01ShapeRawExceedsDedup(t *testing.T) {
	tables := runExperiment(t, "fig1")
	for _, r := range tables[0].Rows {
		dedup, raw := cellFloat(t, r.Cells[0]), cellFloat(t, r.Cells[1])
		if raw < dedup {
			t.Fatalf("version %s: raw %.2f < dedup %.2f", r.X, raw, dedup)
		}
	}
	// Raw grows faster than dedup across versions.
	first, last := tables[0].Rows[0], tables[0].Rows[len(tables[0].Rows)-1]
	rawGrowth := cellFloat(t, last.Cells[1]) - cellFloat(t, first.Cells[1])
	dedupGrowth := cellFloat(t, last.Cells[0]) - cellFloat(t, first.Cells[0])
	if rawGrowth <= dedupGrowth {
		t.Fatalf("raw growth %.2f not above dedup growth %.2f", rawGrowth, dedupGrowth)
	}
}

func TestFig06ProducesNineSubfigures(t *testing.T) {
	tables := runExperiment(t, "fig6")
	if len(tables) != 9 {
		t.Fatalf("fig6 produced %d tables, want 9", len(tables))
	}
	for _, tb := range tables {
		for _, r := range tb.Rows {
			for i, c := range r.Cells {
				if cellFloat(t, c) <= 0 {
					t.Fatalf("%s: non-positive throughput %q for %s", tb.ID, c, tb.Columns[i])
				}
			}
		}
	}
}

func TestFig07BothDatasets(t *testing.T) {
	tables := runExperiment(t, "fig7")
	if len(tables) != 2 {
		t.Fatalf("fig7 produced %d tables", len(tables))
	}
}

func TestFig08DiffLatencies(t *testing.T) {
	runExperiment(t, "fig8")
}

func TestFig09HeightsPlausible(t *testing.T) {
	tables := runExperiment(t, "fig9")
	// MBT heights are constant: exactly one row should carry its whole
	// op count. Find the MBT column.
	mbtCol := -1
	for i, c := range tables[0].Columns {
		if c == "MBT" {
			mbtCol = i
		}
	}
	if mbtCol < 0 {
		t.Fatal("no MBT column")
	}
	nonZero := 0
	for _, r := range tables[0].Rows {
		if cellFloat(t, r.Cells[mbtCol]) > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("MBT spread over %d heights, want exactly 1", nonZero)
	}
}

func TestFig10FourCases(t *testing.T) {
	tables := runExperiment(t, "fig10")
	if len(tables) != 4 {
		t.Fatalf("fig10 produced %d tables", len(tables))
	}
}

func TestFig11Fig12(t *testing.T) {
	runExperiment(t, "fig11")
	runExperiment(t, "fig12")
}

func TestFig13ScanGrowsLoadConstant(t *testing.T) {
	// Use a wider record range than tinyScale so bucket sizes differ by
	// 16x and the decode+scan growth rises clearly above timing noise.
	sc := tinyScale()
	sc.YCSBCounts = []int{500, 8000}
	sc.MBTBuckets = 32
	tables, err := Fig13(sc)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	firstScan := cellFloat(t, rows[0].Cells[1])
	lastScan := cellFloat(t, rows[1].Cells[1])
	if lastScan <= firstScan {
		t.Fatalf("scan time did not grow: %.3f → %.3f", firstScan, lastScan)
	}
}

func TestFig14StorageMonotone(t *testing.T) {
	tables := runExperiment(t, "fig14")
	storage := tables[0]
	for col := range storage.Columns {
		prev := 0.0
		for _, r := range storage.Rows {
			v := cellFloat(t, r.Cells[col])
			if v < prev {
				t.Fatalf("%s storage shrinks with more records", storage.Columns[col])
			}
			prev = v
		}
	}
}

func TestFig15Fig16(t *testing.T) {
	runExperiment(t, "fig15")
	runExperiment(t, "fig16")
}

func TestFig17DedupImprovesWithOverlap(t *testing.T) {
	tables := runExperiment(t, "fig17")
	dedup := tables[2]
	for col := range dedup.Columns {
		first := cellFloat(t, dedup.Rows[0].Cells[col])
		last := cellFloat(t, dedup.Rows[len(dedup.Rows)-1].Cells[col])
		if last < first {
			t.Fatalf("%s dedup ratio decreases with overlap: %.3f → %.3f",
				dedup.Columns[col], first, last)
		}
	}
}

func TestFig18Runs(t *testing.T) {
	runExperiment(t, "fig18")
}

func TestTable3Runs(t *testing.T) {
	tables := runExperiment(t, "table3")
	if len(tables) != 3 {
		t.Fatalf("table3 produced %d tables", len(tables))
	}
}

func TestFig19AblationChangesStructure(t *testing.T) {
	tables := runExperiment(t, "fig19")
	// The ablated variant must measurably differ from the full tree; at
	// tiny scales lineage sharing can mask the direction (the paper's
	// 15-point drop appears at its scale), so the robust assertion is
	// that disabling the property changes the measured ratios at all and
	// that every ratio stays in [0, 1].
	differs := false
	for _, tb := range tables {
		for _, r := range tb.Rows {
			on, off := cellFloat(t, r.Cells[0]), cellFloat(t, r.Cells[1])
			if on < 0 || on > 1 || off < 0 || off > 1 {
				t.Fatalf("%s: ratio outside [0,1]: %v / %v", tb.ID, on, off)
			}
			if on != off {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("ablation had no measurable effect")
	}
}

func TestFig20AblationZeroSharing(t *testing.T) {
	tables := runExperiment(t, "fig20")
	for _, tb := range tables {
		for _, r := range tb.Rows {
			if v := cellFloat(t, r.Cells[1]); v != 0 {
				t.Fatalf("%s: non-recursively-identical ratio %v, want 0", tb.ID, v)
			}
		}
	}
}

func TestFig21Fig22SystemExperiments(t *testing.T) {
	runExperiment(t, "fig21")
	runExperiment(t, "fig22")
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Fatalf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsHaveUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.Name)
		}
	}
}

func TestPercentileAndMean(t *testing.T) {
	samples := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(samples, 0.5); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if m := Mean(samples); m != 5 {
		t.Fatalf("mean = %d", m)
	}
	if Percentile(nil, 0.5) != 0 || Mean(nil) != 0 {
		t.Fatal("empty samples must yield zero")
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", XLabel: "x", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "10", "20")
	tb.AddRow("22", "3", "4")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header line, column header, separator, 2 rows
		t.Fatalf("printed %d lines: %q", len(lines), buf.String())
	}
}

func TestFaultsExperiment(t *testing.T) {
	tables := runExperiment(t, "faults")
	if len(tables) != 2 {
		t.Fatalf("faults produced %d tables, want 2", len(tables))
	}
	// Every recovery row tore the newest segment and the reopen found it.
	for _, r := range tables[0].Rows {
		if r.Cells[2] == "0" || r.Cells[3] == "0" {
			t.Fatalf("recovery row %s reports no torn tail: %v", r.X, r.Cells)
		}
	}
}
