package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/version"
)

// IngestExp measures the write-optimized ingest front-end (internal/ingest)
// against the status-quo write path, for every index class.
//
// The first table is sustained point-write throughput: the direct baseline
// batches writes and commits every IngestCommitEvery of them — each commit
// paying the full root-to-leaf rebuild for its batch — while the buffered
// path appends each write to the WAL-backed memtable and lets auto-merges
// fold IngestMergeEvery-sized batches into the index. Both paths end fully
// merged (the buffered run's final Merge is inside its timing) and both ack
// durability at the same granularity, so the speedup column isolates what
// the memtable amortization buys.
//
// The second table shows what buffering costs readers: Get latency through
// the layered view while a merge is folding a full memtable into the index,
// against the same buffer idle. The overlay lookup is a binary search over
// the memtable snapshot, so the during-merge path should track the idle
// path rather than stalling behind the merge.
func IngestExp(sc Scale) ([]*Table, error) {
	writes := sc.IngestWrites
	if writes <= 0 {
		writes = 2000
	}
	commitEvery := sc.IngestCommitEvery
	if commitEvery <= 0 {
		commitEvery = 100
	}
	mergeEvery := sc.IngestMergeEvery
	if mergeEvery <= 0 {
		mergeEvery = 1000
	}

	thrTable := &Table{
		ID:      "Ingest(a)",
		Title:   fmt.Sprintf("sustained point-write throughput, %d writes (op/s)", writes),
		XLabel:  "index",
		Columns: []string{"Direct(op/s)", "Buffered(op/s)", "Speedup"},
		Note: fmt.Sprintf("direct commits every %d writes; buffered WAL memtable auto-merges every %d (extension)",
			commitEvery, mergeEvery),
	}
	latTable := &Table{
		ID:      "Ingest(b)",
		Title:   "Get latency through the layered view (µs)",
		XLabel:  "index",
		Columns: []string{"Idle p50", "Idle p99", "Merging p50", "Merging p99"},
		Note:    "Merging columns sample Gets while a full memtable folds into the index",
	}

	for _, cls := range ingestClasses(sc) {
		direct, err := ingestDirectRate(sc, cls, writes, commitEvery)
		if err != nil {
			return nil, fmt.Errorf("ingest %s: direct: %w", cls.name, err)
		}
		buffered, err := ingestBufferedRate(sc, cls, writes, commitEvery, mergeEvery)
		if err != nil {
			return nil, fmt.Errorf("ingest %s: buffered: %w", cls.name, err)
		}
		thrTable.AddRow(cls.name, f1(direct), f1(buffered), f2(buffered/direct)+"x")

		idle, merging, err := ingestReadLatency(sc, cls, mergeEvery)
		if err != nil {
			return nil, fmt.Errorf("ingest %s: latency: %w", cls.name, err)
		}
		latTable.AddRow(cls.name,
			us(Percentile(idle, 0.5)), us(Percentile(idle, 0.99)),
			us(Percentile(merging, 0.5)), us(Percentile(merging, 0.99)))
	}
	return []*Table{thrTable, latTable}, nil
}

// ingestClass is one index class wired for the ingest experiment: unlike
// Candidate.New it builds over a caller-supplied store, because the
// buffered path needs the repo and the first merged version to share one.
type ingestClass struct {
	name  string
	newOn func(s store.Store) (core.Index, error)
}

// ingestClasses mirrors RegisterLoaders' class configurations.
func ingestClasses(sc Scale) []ingestClass {
	posCfg := postree.ConfigForNodeSize(sc.NodeSize)
	prollyCfg := prolly.ConfigForNodeSize(sc.NodeSize)
	mbtCfg := mbt.Config{Capacity: sc.MBTBuckets, Fanout: 32}
	mvCfg := mvmbt.ConfigForNodeSize(sc.NodeSize)
	return []ingestClass{
		{"MPT", func(s store.Store) (core.Index, error) { return mpt.New(s), nil }},
		{"MBT", func(s store.Store) (core.Index, error) { return mbt.New(s, mbtCfg) }},
		{"POS-Tree", func(s store.Store) (core.Index, error) { return postree.New(s, posCfg), nil }},
		{"Prolly-Tree", func(s store.Store) (core.Index, error) { return prolly.New(s, prollyCfg), nil }},
		{"MVMB+-Tree", func(s store.Store) (core.Index, error) { return mvmbt.New(s, mvCfg), nil }},
	}
}

// ingestWorkload builds the deterministic shuffled point-write stream both
// paths replay: uniformly random key order over a keyspace half the write
// count, so roughly half the writes are overwrites — the mix a sustained
// ingest sees.
func ingestWorkload(writes int) []core.Entry {
	rng := rand.New(rand.NewSource(83))
	keyspace := writes / 2
	if keyspace < 1 {
		keyspace = 1
	}
	out := make([]core.Entry, writes)
	for i := range out {
		id := rng.Intn(keyspace)
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("ingest-%08d", id)),
			Value: []byte(fmt.Sprintf("val-%08d-%08d-0123456789abcdef0123456789abcdef", id, i)),
		}
	}
	return out
}

// ingestDirectRate measures the baseline: accumulate point writes and
// commit every commitEvery of them straight into the index.
func ingestDirectRate(sc Scale, cls ingestClass, writes, commitEvery int) (float64, error) {
	s, err := sc.NewStore()
	if err != nil {
		return 0, err
	}
	idx, err := cls.newOn(s)
	if err != nil {
		return 0, err
	}
	defer ReleaseIndex(idx)
	repo := version.NewRepo(s)
	RegisterLoaders(repo, sc)

	stream := ingestWorkload(writes)
	start := time.Now()
	batch := make([]core.Entry, 0, commitEvery)
	for i, e := range stream {
		batch = append(batch, e)
		if len(batch) >= commitEvery || i == len(stream)-1 {
			if idx, err = idx.PutBatch(batch); err != nil {
				return 0, err
			}
			if _, err := repo.Commit("main", idx, fmt.Sprintf("batch ending at %d", i)); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	return float64(writes) / time.Since(start).Seconds(), nil
}

// ingestBufferedRate measures the front-end: every write goes through
// Buffer.Put, the WAL group-commits at the baseline's ack granularity, and
// auto-merges fold the memtable in. The final merge is inside the timing so
// both paths end with everything in the index.
func ingestBufferedRate(sc Scale, cls ingestClass, writes, ackEvery, mergeEvery int) (float64, error) {
	s, err := sc.NewStore()
	if err != nil {
		return 0, err
	}
	repo := version.NewRepo(s)
	RegisterLoaders(repo, sc)
	dir, err := os.MkdirTemp("", "siri-ingest-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	bu, err := ingest.Open(repo, ingest.Options{
		Dir: dir, Branch: "main", New: cls.newOn,
		AutoMerge: true, MaxEntries: mergeEvery,
	})
	if err != nil {
		return 0, err
	}
	defer bu.Close()

	stream := ingestWorkload(writes)
	start := time.Now()
	for i, e := range stream {
		if err := bu.Put(e.Key, e.Value); err != nil {
			return 0, err
		}
		if (i+1)%ackEvery == 0 {
			if err := bu.Flush(); err != nil {
				return 0, err
			}
		}
	}
	if err := bu.Flush(); err != nil {
		return 0, err
	}
	if _, _, err := bu.Merge(); err != nil {
		return 0, err
	}
	return float64(writes) / time.Since(start).Seconds(), nil
}

// ingestReadLatency samples Get latency through the layered view with the
// buffer idle (memtable merged) and again while a merge of a full memtable
// races the reads.
func ingestReadLatency(sc Scale, cls ingestClass, mergeEvery int) (idle, merging []time.Duration, err error) {
	s, err := sc.NewStore()
	if err != nil {
		return nil, nil, err
	}
	repo := version.NewRepo(s)
	RegisterLoaders(repo, sc)
	dir, err := os.MkdirTemp("", "siri-ingest-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	bu, err := ingest.Open(repo, ingest.Options{Dir: dir, Branch: "main", New: cls.newOn})
	if err != nil {
		return nil, nil, err
	}
	defer bu.Close()

	// Base dataset, merged: the idle reads hit the index through the
	// (empty) overlay.
	base := ingestWorkload(mergeEvery)
	for _, e := range base {
		if err := bu.Put(e.Key, e.Value); err != nil {
			return nil, nil, err
		}
	}
	if _, _, err := bu.Merge(); err != nil {
		return nil, nil, err
	}

	keys := make([][]byte, len(base))
	for i, e := range base {
		keys[i] = e.Key
	}
	rng := rand.New(rand.NewSource(59))
	const samples = 400
	sample := func(stopWhen func() bool) []time.Duration {
		var out []time.Duration
		for i := 0; i < samples; i++ {
			if stopWhen != nil && stopWhen() {
				break
			}
			k := keys[rng.Intn(len(keys))]
			t0 := time.Now()
			if _, _, err := bu.Get(k); err != nil {
				return out
			}
			out = append(out, time.Since(t0))
		}
		return out
	}
	idle = sample(nil)

	// Refill the memtable and sample while the merge folds it in. A merge
	// that outpaces the sampler just yields fewer racing samples; keep at
	// least one so the percentiles are defined.
	for i, e := range ingestWorkload(mergeEvery) {
		e.Value = append(e.Value, byte('a'+i%26))
		if err := bu.Put(e.Key, e.Value); err != nil {
			return nil, nil, err
		}
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := bu.Merge()
		done <- err
	}()
	merging = sample(func() bool {
		select {
		case err := <-done:
			done <- err
			return true
		default:
			return false
		}
	})
	if err := <-done; err != nil {
		return nil, nil, err
	}
	if len(merging) == 0 {
		merging = sample(nil)[:1]
	}
	return idle, merging, nil
}
