package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/version"
	"repro/internal/workload"
)

// FaultsExp measures what the robustness machinery costs (an extension
// beyond the paper's experiments):
//
// Table (a) — recovery time vs segment count. A DiskStore is filled to a
// target segment count, its newest segment gets a torn tail appended (the
// bytes a crash mid-append leaves), and the experiment times the
// rebuild-on-open that scans every segment, truncates the tear, and
// re-indexes the directory. Recovery is a full-directory scan by design, so
// the time should grow linearly with the segment count.
//
// Table (b) — verify-on-read overhead. The same read and commit workload
// runs over a store wrapped in the fault injector with VerifyReads off and
// on (re-hash every Get against its content address — the paranoid mode the
// scrub uses per read). The gap is the price of continuous end-to-end
// verification versus trusting the store.
func FaultsExp(sc Scale) ([]*Table, error) {
	recovery, err := faultsRecoveryTable(sc)
	if err != nil {
		return nil, err
	}
	overhead, err := faultsVerifyTable(sc)
	if err != nil {
		return nil, err
	}
	return []*Table{recovery, overhead}, nil
}

// faultsRecoveryTable builds table (a): reopen latency against directories
// of growing segment counts, each with a torn final record.
func faultsRecoveryTable(sc Scale) (*Table, error) {
	const (
		segBytes   = 1 << 16
		payloadLen = 4096
	)
	recsPerSeg := int(segBytes) / payloadLen
	targets := []int{4, 16, 48}
	if sc.Ops < 1000 { // tiny/smoke scales: keep the disk footprint trivial
		targets = []int{2, 4, 8}
	}

	table := &Table{
		ID:      "Faults(a)",
		Title:   "crash-recovery (rebuild-on-open) time vs segment count",
		XLabel:  "segments",
		Columns: []string{"Records", "Reopen(µs)", "TornSegs", "TornBytes"},
		Note: fmt.Sprintf("append-only segments of %d KiB, %d B records, torn tail appended to the newest segment before reopen",
			segBytes>>10, payloadLen),
	}
	for _, segs := range targets {
		dir, err := os.MkdirTemp("", "siribench-faults-")
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		openUS, rec, records, err := recoverOnce(dir, segBytes, payloadLen, segs*recsPerSeg)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("faults: %d segments: %w", segs, err)
		}
		table.AddRow(fmt.Sprint(rec.Segments),
			fmt.Sprint(records), fmt.Sprint(openUS),
			fmt.Sprint(rec.TornSegments), fmt.Sprint(rec.TornBytes))
	}
	return table, nil
}

// recoverOnce fills one store directory, tears the newest segment's tail,
// and times the recovering reopen.
func recoverOnce(dir string, segBytes int64, payloadLen, records int) (openUS int64, rec store.RecoverySummary, n int, err error) {
	d, err := store.OpenDiskStore(dir, store.DiskOptions{SegmentBytes: segBytes})
	if err != nil {
		return 0, rec, 0, err
	}
	payload := make([]byte, payloadLen)
	for i := 0; i < records; i++ {
		copy(payload, fmt.Sprintf("faults-record-%08d", i))
		d.Put(payload)
	}
	if err := d.Close(); err != nil {
		return 0, rec, 0, err
	}

	// The torn tail: a length header promising far more bytes than remain,
	// the shape a crash mid-append leaves.
	segments, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segments) == 0 {
		return 0, rec, 0, fmt.Errorf("no segments to tear: %v", err)
	}
	sort.Strings(segments)
	newest := segments[len(segments)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return 0, rec, 0, err
	}
	torn := bytes.Repeat([]byte{0xff}, 1024)
	if _, err := f.Write(torn); err != nil {
		f.Close()
		return 0, rec, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, rec, 0, err
	}

	start := time.Now()
	d2, err := store.OpenDiskStore(dir, store.DiskOptions{SegmentBytes: segBytes})
	elapsed := time.Since(start)
	if err != nil {
		return 0, rec, 0, err
	}
	defer d2.Close()
	rec = d2.Recovery()
	if rec.TornBytes == 0 {
		return 0, rec, 0, fmt.Errorf("reopen did not report the torn tail")
	}
	if got := d2.Stats().UniqueNodes; got != int64(records) {
		return 0, rec, 0, fmt.Errorf("recovered %d records, want %d", got, records)
	}
	return elapsed.Microseconds(), rec, records, nil
}

// faultsVerifyTable builds table (b): read and commit latency with
// verify-on-read off vs on.
func faultsVerifyTable(sc Scale) (*Table, error) {
	records := sc.YCSBCounts[0]
	reads := sc.Ops
	const commits = 8

	table := &Table{
		ID:      "Faults(b)",
		Title:   "read/commit latency with verify-on-read off vs on",
		XLabel:  "workload / verify",
		Columns: []string{"p50(µs)", "p95(µs)", "p99(µs)", "mean(µs)"},
	}
	var p50 [2]time.Duration
	for i, verify := range []bool{false, true} {
		readLat, commitLat, err := faultsVerifyPhase(sc, records, reads, commits, verify)
		if err != nil {
			return nil, fmt.Errorf("faults: verify=%v: %w", verify, err)
		}
		mode := "off"
		if verify {
			mode = "on"
		}
		table.AddRow("read / verify "+mode,
			us(Percentile(readLat, 0.50)), us(Percentile(readLat, 0.95)),
			us(Percentile(readLat, 0.99)), us(Mean(readLat)))
		table.AddRow("commit / verify "+mode,
			us(Percentile(commitLat, 0.50)), us(Percentile(commitLat, 0.95)),
			us(Percentile(commitLat, 0.99)), us(Mean(commitLat)))
		p50[i] = Percentile(readLat, 0.50)
	}
	ratio := 0.0
	if p50[0] > 0 {
		ratio = float64(p50[1]) / float64(p50[0])
	}
	table.Note = fmt.Sprintf("POS-Tree over MemStore behind the fault injector, %d records, %d reads, %d commits of %d updates; read p50 ratio on/off = %s",
		records, reads, commits, sc.RetentionUpdates, f2(ratio))
	return table, nil
}

// faultsVerifyPhase runs one configuration: reads through a loaded view and
// update commits through a Repo, both over the wrapped store.
func faultsVerifyPhase(sc Scale, records, reads, commits int, verify bool) (readLat, commitLat []time.Duration, err error) {
	cfg := postree.ConfigForNodeSize(sc.NodeSize)
	base := store.NewMemStore()
	fs := faultstore.Wrap(base, faultstore.Config{VerifyReads: verify})

	y := workload.NewYCSB(workload.YCSBConfig{Records: records, Seed: 17})
	var idx core.Index = postree.New(fs, cfg)
	idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		return nil, nil, err
	}
	height := 0
	if h, ok := idx.(interface{ Height() int }); ok {
		height = h.Height()
	}
	view := postree.Load(fs, cfg, idx.RootHash(), height)

	rng := rand.New(rand.NewSource(23))
	readLat = make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		k := y.Key(rng.Intn(records))
		start := time.Now()
		if _, _, err := view.Get(k); err != nil {
			return nil, nil, err
		}
		readLat = append(readLat, time.Since(start))
	}

	repo := version.NewRepo(fs)
	RegisterLoaders(repo, sc)
	if _, err := repo.Commit("main", idx, "initial load"); err != nil {
		return nil, nil, err
	}
	cur := idx
	commitLat = make([]time.Duration, 0, commits)
	for v := 1; v <= commits; v++ {
		next, err := updateVersion(cur, y, records, sc.RetentionUpdates, v)
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		if _, err := repo.Commit("main", next, fmt.Sprintf("version %d", v)); err != nil {
			return nil, nil, err
		}
		commitLat = append(commitLat, time.Since(start))
		cur = next
	}
	return readLat, commitLat, nil
}
