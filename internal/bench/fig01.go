package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

// gigabitBytesPerSecond models the paper's 1 Gigabit Ethernet card for the
// transmission-time series of Figure 1.
const gigabitBytesPerSecond = 125_000_000

// Fig01 reproduces Figure 1: storage and transmission time for an evolving
// dataset, with and without deduplication. A dataset of Fig1Records records
// receives Fig1Updates record updates per version; at each checkpoint we
// report the deduplicated footprint (unique pages across all versions) and
// the raw footprint (every version stored separately), plus the time to
// ship each over gigabit Ethernet.
func Fig01(sc Scale) ([]*Table, error) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: sc.Fig1Records, Seed: 1})
	s, err := sc.NewStore()
	if err != nil {
		return nil, err
	}
	defer store.Release(s)
	idx, err := postree.Build(s, postree.ConfigForNodeSize(sc.NodeSize), y.Dataset())
	if err != nil {
		return nil, err
	}

	versionBytes := func(v core.Index) (int64, error) {
		r, err := reachOf(v)
		if err != nil {
			return 0, err
		}
		return r.Bytes, nil
	}

	table := &Table{
		ID:     "Figure 1",
		Title:  "storage (MB) and transmission time (s) vs #versions, deduplicated vs raw",
		XLabel: "#Versions",
		Columns: []string{
			"Storage-Dedup(MB)", "Storage-Raw(MB)", "Time-Dedup(s)", "Time-Raw(s)",
		},
		Note: fmt.Sprintf("%d records, %d updates/version, POS-Tree pages", sc.Fig1Records, sc.Fig1Updates),
	}

	var cur core.Index = idx
	var rawTotal int64
	base, err := versionBytes(cur)
	if err != nil {
		return nil, err
	}
	rawTotal = base

	last := sc.Fig1Checkpoints[len(sc.Fig1Checkpoints)-1]
	ci := 0
	for v := 1; v <= last; v++ {
		updates := make([]core.Entry, sc.Fig1Updates)
		z := workload.NewZipfian(uint64(sc.Fig1Records), 0, int64(v)*31)
		for j := range updates {
			id := int(z.Next())
			updates[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, v)}
		}
		cur, err = cur.PutBatch(updates)
		if err != nil {
			return nil, err
		}
		vb, err := versionBytes(cur)
		if err != nil {
			return nil, err
		}
		rawTotal += vb

		if ci < len(sc.Fig1Checkpoints) && v == sc.Fig1Checkpoints[ci] {
			dedup := s.Stats().UniqueBytes
			table.AddRow(fmt.Sprint(v),
				f1(MB(dedup)),
				f1(MB(rawTotal)),
				f2(float64(dedup)/gigabitBytesPerSecond),
				f2(float64(rawTotal)/gigabitBytesPerSecond),
			)
			ci++
		}
	}
	return []*Table{table}, nil
}
