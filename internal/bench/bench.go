// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function producing text tables with
// the same rows and series the paper plots; cmd/siribench drives them and
// the repository-root benchmarks wrap them in testing.B.
//
// Absolute numbers depend on hardware; the claims these experiments
// reproduce are the shapes: which index wins, by roughly what factor, and
// where the crossovers fall.
package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

// Scale bounds the experiment sizes. The paper's full scale (2.56M records
// per cell across 9 configurations) is hours of compute; Small keeps every
// experiment in seconds and Medium in minutes while preserving the shapes.
type Scale struct {
	Name string
	// YCSBCounts are the x-axis record counts for Figures 6, 14 and 21.
	YCSBCounts []int
	// Ops is the operation count per throughput/latency measurement.
	Ops int
	// Batch is the write batch size (the paper's default is 4000).
	Batch int
	// LatencyRecords is the dataset size for Figure 10 (paper: 160k).
	LatencyRecords int
	// DiffCounts are the x-axis record counts for Figure 8.
	DiffCounts []int
	// Wiki parameters (Figures 7a, 11, 15).
	WikiPages, WikiVersions, WikiUpdates int
	// Ethereum parameters (Figures 7b, 12, 16).
	EthBlocks, EthTxPerBlock int
	// Collaboration parameters (Figures 17–20, Table 3).
	CollabParties, CollabInit, CollabOps int
	// NodeSize is the tuned index node size (paper: ~1KB).
	NodeSize int
	// MBTBuckets is the bucket count for MBT instances.
	MBTBuckets int
	// Figure 1 parameters: initial records, updates per version, and the
	// version counts at which storage/time are sampled (paper: 100k
	// records, 1k updates, 100–500 versions).
	Fig1Records     int
	Fig1Updates     int
	Fig1Checkpoints []int
	// Retention parameters (the versioning + GC extension): commit
	// RetentionVersions versions of RetentionUpdates updates each, then GC
	// down to the newest RetentionKeep and report reclaimed bytes.
	// cmd/siribench's -retain flag overrides RetentionKeep.
	RetentionVersions int
	RetentionUpdates  int
	RetentionKeep     int

	// Ingest parameters (the WAL-backed write-optimized front-end
	// extension): IngestWrites point writes per path, with the direct
	// baseline committing every IngestCommitEvery writes and the buffered
	// path auto-merging every IngestMergeEvery. cmd/siribench's -ingest
	// flag overrides IngestWrites. IngestMergeEvery must stay large
	// relative to MBTBuckets: an MBT merge rewrites every touched bucket,
	// so a merge much smaller than the bucket count forfeits the
	// amortization the buffer exists to provide.
	IngestWrites      int
	IngestCommitEvery int
	IngestMergeEvery  int

	// Overload parameters (the serving-layer overload-protection
	// extension): each cell drives OverloadBaseConns × load-multiplier
	// closed-loop writers against one servlet for OverloadWindowMS, with
	// load shedding on (MaxInflight = OverloadBaseConns) and off.
	// cmd/siribench's -overloadms flag overrides OverloadWindowMS.
	OverloadWindowMS  int
	OverloadBaseConns int

	// SecondaryRows is the dataset size for the secondary-index experiment
	// (the secondary indexes + planner extension): rows loaded through a
	// table maintaining one derived-attribute secondary, then probed with
	// narrow queries through the index route and the scan route.
	SecondaryRows int

	// Store selects the node-store backend every candidate builds on, so
	// each table/figure can run against the mem/sharded/disk ×
	// cache-size matrix. The zero value is the historical default: an
	// uncached MemStore. cmd/siribench populates it from -store/-shards/
	// -storedir/-cache.
	Store StoreConfig
	// ClientCacheBytes bounds the Forkbase client node cache in the
	// system experiments (Figures 21–22). 0 selects the paper's default
	// (64 MiB); negative disables client caching.
	ClientCacheBytes int64

	// tracker, when set, records every store NewStore opens so the
	// experiment wrapper can release them all when the run ends. See
	// WithStoreTracking.
	tracker *storeTracker
}

// storeTracker collects stores opened during one experiment run.
type storeTracker struct {
	mu     sync.Mutex
	stores []store.Store
}

func (t *storeTracker) add(s store.Store) {
	t.mu.Lock()
	t.stores = append(t.stores, s)
	t.mu.Unlock()
}

// aggregate sums the current accounting of every tracked store. Called
// before releaseAll when a caller wants the run's storage footprint (a
// released DiskStore has deleted its files).
func (t *storeTracker) aggregate() store.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var agg store.Stats
	for _, s := range t.stores {
		st := s.Stats()
		agg.UniqueNodes += st.UniqueNodes
		agg.UniqueBytes += st.UniqueBytes
		agg.RawNodes += st.RawNodes
		agg.RawBytes += st.RawBytes
		agg.DedupHits += st.DedupHits
		agg.Gets += st.Gets
		agg.Misses += st.Misses
	}
	return agg
}

// releaseAll releases every tracked store. Releasing a store twice is safe
// (DiskStore.Close is idempotent), so experiments that already release
// per-cell for promptness need no special casing.
func (t *storeTracker) releaseAll() {
	t.mu.Lock()
	stores := t.stores
	t.stores = nil
	t.mu.Unlock()
	for _, s := range stores {
		_ = store.Release(s)
	}
}

// WithStoreTracking returns a copy of sc whose NewStore registers every
// store it opens, plus the release function that closes them all. The
// experiment registry wraps every Run with it so no figure can leak disk
// stores, even on error paths.
func (sc Scale) WithStoreTracking() (Scale, func()) {
	t := &storeTracker{}
	sc.tracker = t
	return sc, t.releaseAll
}

// StoreConfig mirrors store.Config for the fields experiments may vary.
type StoreConfig struct {
	Backend    string // "mem" (default), "sharded" or "disk"
	Shards     int    // sharded backend; 0 = store.DefaultShards
	Dir        string // disk backend base dir; "" = OS temp dir
	CacheBytes int64  // >0 layers an LRU cache over the backend
}

// NewStore opens one store per the scale's backend selection. Disk-backed
// stores land in a fresh subdirectory each call and remove it on Release,
// so candidates never share or leak segment files.
func (sc Scale) NewStore() (store.Store, error) {
	s, err := store.Open(store.Config{
		Backend:    sc.Store.Backend,
		Shards:     sc.Store.Shards,
		Dir:        sc.Store.Dir,
		CacheBytes: sc.Store.CacheBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if sc.tracker != nil {
		sc.tracker.add(s)
	}
	return s, nil
}

// ReleaseIndex releases the store backing idx once an experiment cell is
// done with every version built over it. In-memory backends make this a
// no-op; disk backends close and remove their segment files.
func ReleaseIndex(idx core.Index) {
	if idx != nil {
		_ = store.Release(idx.Store())
	}
}

// ReleaseVersions releases every distinct store behind a version set (the
// collaboration experiments build one store per party).
func ReleaseVersions(versions []core.Index) {
	seen := make(map[store.Store]bool)
	for _, v := range versions {
		if v == nil || seen[v.Store()] {
			continue
		}
		seen[v.Store()] = true
		_ = store.Release(v.Store())
	}
}

// TinyScale keeps the full experiment suite runnable in a few seconds
// total; it exercises every code path and is what the repository-root
// testing.B benchmarks use.
func TinyScale() Scale {
	return Scale{
		Name:           "tiny",
		YCSBCounts:     []int{200, 400},
		Ops:            300,
		Batch:          100,
		LatencyRecords: 500,
		DiffCounts:     []int{300, 600},
		WikiPages:      300, WikiVersions: 6, WikiUpdates: 30,
		EthBlocks: 5, EthTxPerBlock: 30,
		CollabParties: 2, CollabInit: 300, CollabOps: 600,
		NodeSize:    512,
		MBTBuckets:  64,
		Fig1Records: 500, Fig1Updates: 50, Fig1Checkpoints: []int{2, 4},
		RetentionVersions: 8, RetentionUpdates: 40, RetentionKeep: 3,
		IngestWrites: 2000, IngestCommitEvery: 100, IngestMergeEvery: 1000,
		SecondaryRows:    1200,
		OverloadWindowMS: 250, OverloadBaseConns: 4,
	}
}

// SmallScale keeps everything under a few seconds per experiment — used by
// the go test benchmarks.
func SmallScale() Scale {
	return Scale{
		Name:           "small",
		YCSBCounts:     []int{1000, 2000, 4000, 8000},
		Ops:            2000,
		Batch:          500,
		LatencyRecords: 8000,
		DiffCounts:     []int{2000, 4000, 8000},
		WikiPages:      2000, WikiVersions: 20, WikiUpdates: 100,
		EthBlocks: 20, EthTxPerBlock: 100,
		CollabParties: 4, CollabInit: 5000, CollabOps: 20000,
		NodeSize:    1024,
		MBTBuckets:  512,
		Fig1Records: 5000, Fig1Updates: 100, Fig1Checkpoints: []int{10, 20, 30, 40, 50},
		RetentionVersions: 20, RetentionUpdates: 200, RetentionKeep: 5,
		IngestWrites: 8000, IngestCommitEvery: 200, IngestMergeEvery: 2000,
		SecondaryRows:    4000,
		OverloadWindowMS: 400, OverloadBaseConns: 4,
	}
}

// MediumScale is the default for cmd/siribench: minutes per experiment,
// with enough range for the crossovers to show.
func MediumScale() Scale {
	return Scale{
		Name:           "medium",
		YCSBCounts:     []int{10000, 20000, 40000, 80000, 160000},
		Ops:            10000,
		Batch:          4000,
		LatencyRecords: 160000,
		DiffCounts:     []int{50000, 100000, 150000, 200000, 250000},
		WikiPages:      20000, WikiVersions: 50, WikiUpdates: 200,
		EthBlocks: 50, EthTxPerBlock: 150,
		CollabParties: 10, CollabInit: 40000, CollabOps: 160000,
		NodeSize:    1024,
		MBTBuckets:  4096,
		Fig1Records: 100000, Fig1Updates: 1000, Fig1Checkpoints: []int{100, 200, 300, 400, 500},
		RetentionVersions: 50, RetentionUpdates: 1000, RetentionKeep: 5,
		IngestWrites: 40000, IngestCommitEvery: 500, IngestMergeEvery: 20000,
		SecondaryRows:    20000,
		OverloadWindowMS: 1000, OverloadBaseConns: 8,
	}
}

// FullScale approaches the paper's settings; expect long runtimes.
func FullScale() Scale {
	return Scale{
		Name:           "full",
		YCSBCounts:     []int{10000, 20000, 40000, 80000, 160000, 320000, 640000, 1280000, 2560000},
		Ops:            10000,
		Batch:          4000,
		LatencyRecords: 160000,
		DiffCounts:     []int{500000, 1000000, 1500000, 2000000, 2500000},
		WikiPages:      100000, WikiVersions: 300, WikiUpdates: 500,
		EthBlocks: 300, EthTxPerBlock: 150,
		CollabParties: 10, CollabInit: 40000, CollabOps: 160000,
		NodeSize:    1024,
		MBTBuckets:  4096,
		Fig1Records: 100000, Fig1Updates: 1000, Fig1Checkpoints: []int{100, 200, 300, 400, 500},
		RetentionVersions: 50, RetentionUpdates: 1000, RetentionKeep: 5,
		IngestWrites: 200000, IngestCommitEvery: 1000, IngestMergeEvery: 20000,
		SecondaryRows:    100000,
		OverloadWindowMS: 2000, OverloadBaseConns: 8,
	}
}

// ScaleByName resolves tiny/small/medium/full. Tiny is the CI smoke scale:
// the whole suite in seconds, every code path exercised.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return TinyScale(), nil
	case "small":
		return SmallScale(), nil
	case "medium", "":
		return MediumScale(), nil
	case "full":
		return FullScale(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want tiny, small, medium or full)", name)
}

// Candidate describes one index class under test.
type Candidate struct {
	Name string
	// New returns an empty index over a fresh store.
	New func() (core.Index, error)
	// PerOpWrites applies write workloads one operation at a time, the
	// way the paper's implementations of MPT, MBT and the baseline work;
	// §5.2 applies batching — "taking advantage of the bottom-up build
	// order" — to POS-Tree only.
	PerOpWrites bool
}

// CandidateSet returns the paper's four candidates — POS-Tree, MBT, MPT and
// the MVMB+-Tree baseline — tuned to the scale's node size.
func CandidateSet(sc Scale) []Candidate {
	return []Candidate{
		{
			Name: "POS-Tree",
			New: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return postree.New(s, postree.ConfigForNodeSize(sc.NodeSize)), nil
			},
		},
		{
			Name: "MBT",
			New: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mbt.New(s, mbt.Config{Capacity: sc.MBTBuckets, Fanout: 32})
			},
			PerOpWrites: true,
		},
		{
			Name: "MPT",
			New: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mpt.New(s), nil
			},
			PerOpWrites: true,
		},
		{
			Name: "MVMB+-Tree",
			New: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mvmbt.New(s, mvmbt.ConfigForNodeSize(sc.NodeSize)), nil
			},
			PerOpWrites: true,
		},
	}
}

// LoadBatched applies entries to idx in batches, returning the final
// version. This is how every experiment loads datasets (the paper batches
// all loads; §5.4.2 uses 4000 as the default batch size).
func LoadBatched(idx core.Index, entries []core.Entry, batch int) (core.Index, error) {
	if batch <= 0 {
		batch = 4000
	}
	for start := 0; start < len(entries); start += batch {
		end := start + batch
		if end > len(entries) {
			end = len(entries)
		}
		next, err := idx.PutBatch(entries[start:end])
		if err != nil {
			return nil, err
		}
		idx = next
	}
	return idx, nil
}

// Throughput runs ops against idx — reads individually, writes batched —
// and returns operations per second plus the final version. A batch of 1
// (or less) applies writes per operation, the paper's mode for the
// non-batching candidates.
func Throughput(idx core.Index, ops []workloadOp, batch int) (float64, core.Index, error) {
	if batch <= 1 {
		return throughputPerOp(idx, ops)
	}
	start := time.Now()
	var writeBuf []core.Entry
	flush := func() error {
		if len(writeBuf) == 0 {
			return nil
		}
		next, err := idx.PutBatch(writeBuf)
		if err != nil {
			return err
		}
		idx = next
		writeBuf = writeBuf[:0]
		return nil
	}
	for _, op := range ops {
		if op.Write {
			writeBuf = append(writeBuf, op.Entry)
			if len(writeBuf) >= batch {
				if err := flush(); err != nil {
					return 0, nil, err
				}
			}
			continue
		}
		if op.Scan {
			// Like point Gets in this batched mode, scans read the current
			// committed version; buffered writes stay buffered so batching
			// candidates keep their batch advantage under scan-heavy mixes.
			if err := RunScan(idx, op); err != nil {
				return 0, nil, err
			}
			continue
		}
		if _, _, err := idx.Get(op.Entry.Key); err != nil {
			return 0, nil, err
		}
	}
	if err := flush(); err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	return float64(len(ops)) / elapsed.Seconds(), idx, nil
}

// throughputPerOp applies every operation individually.
func throughputPerOp(idx core.Index, ops []workloadOp) (float64, core.Index, error) {
	start := time.Now()
	for _, op := range ops {
		if op.Write {
			next, err := idx.Put(op.Entry.Key, op.Entry.Value)
			if err != nil {
				return 0, nil, err
			}
			idx = next
			continue
		}
		if op.Scan {
			if err := RunScan(idx, op); err != nil {
				return 0, nil, err
			}
			continue
		}
		if _, _, err := idx.Get(op.Entry.Key); err != nil {
			return 0, nil, err
		}
	}
	return float64(len(ops)) / time.Since(start).Seconds(), idx, nil
}

// RunScan executes one workload scan op: an ordered walk from the op's
// start key visiting at most ScanLen entries, through the index's native
// Range when it has one (all five candidates do) and the Iterate fallback
// otherwise.
func RunScan(idx core.Index, op workloadOp) error {
	remaining := op.ScanLen
	if remaining <= 0 {
		remaining = 1
	}
	return core.RangeOf(idx, op.Entry.Key, nil, func(_, _ []byte) bool {
		remaining--
		return remaining > 0
	})
}

// WriteBatchFor returns the batch size a candidate uses for write
// workloads: the configured batch for batching candidates, 1 for per-op
// candidates.
func WriteBatchFor(c Candidate, batch int) int {
	if c.PerOpWrites {
		return 1
	}
	return batch
}

// workloadOp aliases workload.Op so experiment code can hand the generated
// streams straight to the measurement helpers.
type workloadOp = workload.Op

// Latencies measures per-operation latency for ops, returning the samples.
func Latencies(idx core.Index, ops []workloadOp) ([]time.Duration, core.Index, error) {
	out := make([]time.Duration, 0, len(ops))
	for _, op := range ops {
		start := time.Now()
		switch {
		case op.Write:
			next, err := idx.Put(op.Entry.Key, op.Entry.Value)
			if err != nil {
				return nil, nil, err
			}
			idx = next
		case op.Scan:
			if err := RunScan(idx, op); err != nil {
				return nil, nil, err
			}
		default:
			if _, _, err := idx.Get(op.Entry.Key); err != nil {
				return nil, nil, err
			}
		}
		out = append(out, time.Since(start))
	}
	return out, idx, nil
}

// Percentile returns the p-quantile (0..1) of samples.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Mean returns the average of samples.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}

// MB renders bytes as megabytes.
func MB(b int64) float64 { return float64(b) / (1 << 20) }

// reachOf wraps core.ReachStats with a uniform error prefix.
func reachOf(idx core.Index) (core.Reach, error) {
	r, err := core.ReachStats(idx)
	if err != nil {
		return core.Reach{}, fmt.Errorf("bench: reach stats for %s: %w", idx.Name(), err)
	}
	return r, nil
}
