package bench

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig11 reproduces Figure 11: latency distributions on the Wiki dataset,
// read and write.
func Fig11(sc Scale) ([]*Table, error) {
	w := workload.NewWiki(workload.WikiConfig{
		Pages: sc.WikiPages, Versions: sc.WikiVersions,
		UpdatesPerVersion: sc.WikiUpdates, Seed: 7,
	})
	mkDataset := func(write bool) func() ([]core.Entry, []workloadOp) {
		return func() ([]core.Entry, []workloadOp) {
			dataset := w.Dataset()
			rng := rand.New(rand.NewSource(21))
			ops := make([]workloadOp, sc.Ops)
			for i := range ops {
				p := rng.Intn(sc.WikiPages)
				ops[i] = workloadOp{Write: write, Entry: core.Entry{Key: w.Key(p)}}
				if write {
					ops[i].Entry.Value = w.Value(p, 500+i)
				}
			}
			return dataset, ops
		}
	}
	read, err := latencyTable(sc, "Figure 11(a)", false, 0, mkDataset(false))
	if err != nil {
		return nil, err
	}
	read.Title = "Wiki read latency (µs): mean / p50 / p90 / p99"
	write, err := latencyTable(sc, "Figure 11(b)", true, 0, mkDataset(true))
	if err != nil {
		return nil, err
	}
	write.Title = "Wiki write latency (µs): mean / p50 / p90 / p99"
	return []*Table{read, write}, nil
}
