package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/prolly"
	"repro/internal/workload"
)

// ScanExp measures ordered range-scan performance — the workload the paper
// keeps the MVMB+-Tree around as the baseline for, here opened up across
// all five indexes through core.Ranger. Two tables come out:
//
// The first sweeps selectivity: bounded scans covering 0.1%, 1% and 10% of
// the key space, reported as scanned entries per second per index. The
// ordered structures (MPT, POS-Tree, Prolly Tree, MVMB+-Tree) prune to the
// covered subtrees, so their cost tracks the result size; MBT must visit
// every bucket regardless of bounds — its hash partitioning trades range
// locality for balance — which is exactly the contrast the table shows.
//
// The second runs a YCSB-E-style mixed stream (95% scans of uniform length
// ≤ 100, 5% writes) and reports operations per second.
func ScanExp(sc Scale) ([]*Table, error) {
	n := sc.YCSBCounts[len(sc.YCSBCounts)-1]
	// WriteRatio 1 makes every non-scan op a write, matching YCSB-E's
	// 95% scan / 5% insert mix.
	y := workload.NewYCSB(workload.YCSBConfig{Records: n, WriteRatio: 1, Seed: 42})
	dataset := y.Dataset()
	sortedKeys := make([][]byte, len(dataset))
	for i, e := range dataset {
		sortedKeys[i] = e.Key
	}
	sort.Slice(sortedKeys, func(i, j int) bool { return bytes.Compare(sortedKeys[i], sortedKeys[j]) < 0 })

	cands := scanCandidates(sc)
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.Name
	}

	selTable := &Table{
		ID:      "RangeScan(a)",
		Title:   fmt.Sprintf("range-scan rate (Kentries/s), %d records", n),
		XLabel:  "selectivity",
		Columns: names,
		Note:    "bounded ordered scans; MBT cannot prune (hash-partitioned), the rest read only the covered subtrees",
	}
	ycsbETable := &Table{
		ID:      "RangeScan(b)",
		Title:   fmt.Sprintf("YCSB-E throughput (Kops/s), %d records, 95%% scans / 5%% writes", n),
		XLabel:  "workload",
		Columns: names,
	}

	selectivities := []float64{0.001, 0.01, 0.1}
	rates := make(map[string][]float64, len(cands))
	ycsbE := make([]string, 0, len(cands))
	for _, cand := range cands {
		idx, err := cand.New()
		if err != nil {
			return nil, fmt.Errorf("scan %s: %w", cand.Name, err)
		}
		idx, err = LoadBatched(idx, dataset, sc.Batch)
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("scan %s: load: %w", cand.Name, err)
		}
		for _, sel := range selectivities {
			rate, err := scanRate(idx, sortedKeys, sel)
			if err != nil {
				ReleaseIndex(idx)
				return nil, fmt.Errorf("scan %s sel=%g: %w", cand.Name, sel, err)
			}
			rates[cand.Name] = append(rates[cand.Name], rate)
		}
		ops := y.ScanOps(sc.Ops/4, 0.95, 100)
		tput, _, err := Throughput(idx, ops, WriteBatchFor(cand, sc.Batch))
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("scan %s ycsb-e: %w", cand.Name, err)
		}
		ycsbE = append(ycsbE, f1(tput/1000))
		ReleaseIndex(idx)
	}
	for i, sel := range selectivities {
		cells := make([]string, len(cands))
		for j, cand := range cands {
			cells[j] = f1(rates[cand.Name][i] / 1000)
		}
		selTable.AddRow(fmt.Sprintf("%.1f%%", sel*100), cells...)
	}
	ycsbETable.AddRow("E", ycsbE...)
	return []*Table{selTable, ycsbETable}, nil
}

// scanCandidates is CandidateSet plus the Prolly Tree: the scan experiment
// covers every Ranger implementation, not just the paper's four.
func scanCandidates(sc Scale) []Candidate {
	cands := CandidateSet(sc)
	return append(cands, Candidate{
		Name: "Prolly-Tree",
		New: func() (core.Index, error) {
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			return prolly.New(s, prolly.ConfigForNodeSize(sc.NodeSize)), nil
		},
	})
}

// scanRate runs bounded scans covering a sel fraction of the sorted key
// space, with evenly spread start positions, and returns entries visited
// per second. Repeated scans share the index's decoded-node cache, as a
// real scan-heavy tenant would.
func scanRate(idx core.Index, sortedKeys [][]byte, sel float64) (float64, error) {
	n := len(sortedKeys)
	span := int(float64(n) * sel)
	if span < 1 {
		span = 1
	}
	const scans = 12
	visited := 0
	start := time.Now()
	for i := 0; i < scans; i++ {
		at := (i * (n - span)) / scans
		lo := sortedKeys[at]
		var hi []byte
		if at+span < n {
			hi = sortedKeys[at+span]
		}
		if err := core.RangeOf(idx, lo, hi, func(_, _ []byte) bool {
			visited++
			return true
		}); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		elapsed = 1e-9
	}
	return float64(visited) / elapsed, nil
}
