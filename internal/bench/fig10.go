package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig10 reproduces Figure 10: per-operation latency distributions on YCSB
// for read and write workloads under balanced (θ=0) and highly skewed
// (θ=0.9) key selection. The paper plots full histograms; the tables report
// the distributions as mean / p50 / p90 / p99 per index.
func Fig10(sc Scale) ([]*Table, error) {
	var tables []*Table
	cases := []struct {
		id    string
		write bool
		theta float64
	}{
		{"Figure 10(a)", false, 0},
		{"Figure 10(b)", false, 0.9},
		{"Figure 10(c)", true, 0},
		{"Figure 10(d)", true, 0.9},
	}
	for _, c := range cases {
		t, err := latencyTable(sc, c.id, c.write, c.theta, nil)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// latencyTable measures per-op latency distributions for all candidates.
// When datasetFn is nil a YCSB dataset of sc.LatencyRecords records is
// used; otherwise datasetFn supplies the records and op keys.
func latencyTable(sc Scale, id string, write bool, theta float64, datasetFn func() ([]core.Entry, []workloadOp)) (*Table, error) {
	kind := "read"
	if write {
		kind = "write"
	}
	skew := "balanced"
	if theta > 0 {
		skew = "skewed"
	}
	cands := CandidateSet(sc)
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s latency (µs), %s: mean / p50 / p90 / p99", kind, skew),
		XLabel:  "Index",
		Columns: []string{"mean", "p50", "p90", "p99"},
	}
	for _, cand := range cands {
		var dataset []core.Entry
		var ops []workloadOp
		if datasetFn != nil {
			dataset, ops = datasetFn()
		} else {
			wr := 0.0
			if write {
				wr = 1.0
			}
			y := workload.NewYCSB(workload.YCSBConfig{
				Records: sc.LatencyRecords, Theta: theta, WriteRatio: wr, Seed: 10,
			})
			dataset = y.Dataset()
			ops = y.Ops(sc.Ops)
		}
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		idx, err = LoadBatched(idx, dataset, sc.Batch)
		if err != nil {
			return nil, err
		}
		samples, _, err := Latencies(idx, ops)
		ReleaseIndex(idx)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, cand.Name, err)
		}
		t.AddRow(cand.Name,
			us(Mean(samples)), us(Percentile(samples, 0.5)),
			us(Percentile(samples, 0.9)), us(Percentile(samples, 0.99)))
	}
	return t, nil
}

// us renders a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}
