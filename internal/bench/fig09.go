package bench

import (
	"fmt"

	"repro/internal/workload"
)

// Fig09 reproduces Figure 9: the distribution of traversed tree heights for
// a uniform write workload. Every operation's lookup path length is
// recorded; the table reports how many operations traversed each height.
func Fig09(sc Scale) ([]*Table, error) {
	cands := CandidateSet(sc)
	n := sc.LatencyRecords
	y := workload.NewYCSB(workload.YCSBConfig{Records: n, Theta: 0, WriteRatio: 1, Seed: 9})
	dataset := y.Dataset()

	histograms := make([]map[int]int, len(cands))
	maxH := 0
	for ci, cand := range cands {
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		idx, err = LoadBatched(idx, dataset, sc.Batch)
		if err != nil {
			return nil, err
		}
		hist := map[int]int{}
		ops := y.Ops(sc.Ops)
		for _, op := range ops {
			pl, err := idx.PathLength(op.Entry.Key)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", cand.Name, err)
			}
			hist[pl]++
			if pl > maxH {
				maxH = pl
			}
		}
		histograms[ci] = hist
		ReleaseIndex(idx)
	}

	t := &Table{
		ID:      "Figure 9",
		Title:   "#operations (x1000) by traversed tree height, uniform write workload",
		XLabel:  "Tree Height",
		Columns: candidateNames(cands),
		Note:    fmt.Sprintf("%d records, %d operations", n, sc.Ops),
	}
	for h := 1; h <= maxH; h++ {
		any := false
		cells := make([]string, len(cands))
		for ci := range cands {
			c := histograms[ci][h]
			cells[ci] = f2(float64(c) / 1000)
			if c > 0 {
				any = true
			}
		}
		if any {
			t.AddRow(fmt.Sprint(h), cells...)
		}
	}
	return []*Table{t}, nil
}
