package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/prolly"
	"repro/internal/store"
	"repro/internal/version"
	"repro/internal/workload"
)

// RetentionExp measures the versioning + GC extension end-to-end: for each
// of the five indexes, load a base dataset, commit RetentionVersions
// versions of RetentionUpdates updates each into a version.Repo, GC down to
// the newest RetentionKeep commits, and report the space that came back.
//
// The first table extends the Figure 1 / §5.4.2 story from "versions are
// cheap to keep" to "versions are cheap to drop": Before is the deduplicated
// footprint with the full history resident, After is the footprint of just
// the retained window, and DedupRatio is η(S) over the retained versions —
// the structural sharing that remains after the history is bounded. On the
// disk backend a Disk column shows the segment-file bytes reclaimed by
// compaction; in-memory backends show "-".
//
// The second table reports the GC pass itself: marked live set, swept
// nodes, and DiskStore segments compacted.
func RetentionExp(sc Scale) ([]*Table, error) {
	k := sc.RetentionVersions
	if k < 2 {
		k = 2
	}
	keep := sc.RetentionKeep
	if keep < 1 {
		keep = 1
	}
	if keep > k {
		keep = k
	}

	spaceTable := &Table{
		ID:     "Retention(a)",
		Title:  fmt.Sprintf("space reclamation: %d versions GC'd to newest %d", k, keep),
		XLabel: "index",
		Columns: []string{
			"Before(MB)", "After(MB)", "Reclaimed(MB)", "Reclaimed%", "DedupRatio(retained)", "Disk(MB) before→after",
		},
		Note: fmt.Sprintf("%d base records, %d updates/version; Before/After = store unique bytes",
			sc.YCSBCounts[0], sc.RetentionUpdates),
	}
	gcTable := &Table{
		ID:      "Retention(b)",
		Title:   "GC pass accounting",
		XLabel:  "index",
		Columns: []string{"LiveNodes", "LiveMB", "SweptNodes", "SweptMB", "SegsCompacted"},
	}

	y := workload.NewYCSB(workload.YCSBConfig{Records: sc.YCSBCounts[0], Seed: 17})
	for _, cand := range scanCandidates(sc) {
		idx, err := cand.New()
		if err != nil {
			return nil, fmt.Errorf("retention %s: %w", cand.Name, err)
		}
		idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("retention %s: load: %w", cand.Name, err)
		}
		repo := version.NewRepo(idx.Store())
		RegisterLoaders(repo, sc)
		if _, err := repo.Commit("main", idx, "initial load"); err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("retention %s: %w", cand.Name, err)
		}
		for v := 1; v < k; v++ {
			z := workload.NewZipfian(uint64(sc.YCSBCounts[0]), 0.5, int64(v)*97)
			updates := make([]core.Entry, sc.RetentionUpdates)
			for j := range updates {
				id := int(z.Next())
				updates[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, v)}
			}
			idx, err = idx.PutBatch(updates)
			if err != nil {
				ReleaseIndex(idx)
				return nil, fmt.Errorf("retention %s v%d: %w", cand.Name, v, err)
			}
			if _, err := repo.Commit("main", idx, fmt.Sprintf("version %d", v)); err != nil {
				ReleaseIndex(idx)
				return nil, fmt.Errorf("retention %s v%d: %w", cand.Name, v, err)
			}
		}

		log, err := repo.Log("main")
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("retention %s: %w", cand.Name, err)
		}
		retained := log[:keep] // newest first

		views := make([]core.Index, len(retained))
		for i, c := range retained {
			if views[i], err = repo.Checkout(c.ID); err != nil {
				ReleaseIndex(idx)
				return nil, fmt.Errorf("retention %s: checkout: %w", cand.Name, err)
			}
		}
		vs, err := core.AnalyzeVersions(views...)
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("retention %s: analyze: %w", cand.Name, err)
		}

		before := idx.Store().Stats().UniqueBytes
		diskBefore, hasDisk := store.DiskUsageOf(idx.Store())

		gst, err := repo.GC(retained...)
		if err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("retention %s: GC: %w", cand.Name, err)
		}
		after := idx.Store().Stats().UniqueBytes
		diskCell := "-"
		if hasDisk {
			if diskAfter, ok := store.DiskUsageOf(idx.Store()); ok {
				diskCell = fmt.Sprintf("%s→%s", f1(MB(diskBefore)), f1(MB(diskAfter)))
			}
		}
		reclaimed := before - after
		pct := 0.0
		if before > 0 {
			pct = 100 * float64(reclaimed) / float64(before)
		}
		spaceTable.AddRow(cand.Name,
			f2(MB(before)), f2(MB(after)), f2(MB(reclaimed)), f1(pct),
			f2(vs.DedupRatio()), diskCell)
		gcTable.AddRow(cand.Name,
			fmt.Sprint(gst.LiveNodes), f2(MB(gst.LiveBytes)),
			fmt.Sprint(gst.Store.SweptNodes), f2(MB(gst.Store.SweptBytes)),
			fmt.Sprint(gst.Store.SegmentsCompacted))
		ReleaseIndex(idx)
	}
	return []*Table{spaceTable, gcTable}, nil
}

// RegisterLoaders installs a version.Loader for every index class the
// benchmark candidates build at this scale, so commits of any class can be
// checked out and GC-marked. cmd/siribench's version verbs reuse it.
func RegisterLoaders(repo *version.Repo, sc Scale) {
	posCfg := postree.ConfigForNodeSize(sc.NodeSize)
	prollyCfg := prolly.ConfigForNodeSize(sc.NodeSize)
	mbtCfg := mbt.Config{Capacity: sc.MBTBuckets, Fanout: 32}
	mvCfg := mvmbt.ConfigForNodeSize(sc.NodeSize)
	repo.RegisterLoader("MPT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mpt.Load(s, root), nil
	})
	repo.RegisterLoader("MBT", func(s store.Store, root hash.Hash, _ int) (core.Index, error) {
		return mbt.Load(s, mbtCfg, root)
	})
	repo.RegisterLoader("POS-Tree", func(s store.Store, root hash.Hash, height int) (core.Index, error) {
		return postree.Load(s, posCfg, root, height), nil
	})
	repo.RegisterLoader("Prolly-Tree", func(s store.Store, root hash.Hash, height int) (core.Index, error) {
		return prolly.Load(s, prollyCfg, root, height), nil
	})
	repo.RegisterLoader("MVMB+-Tree", func(s store.Store, root hash.Hash, height int) (core.Index, error) {
		return mvmbt.Load(s, mvCfg, root, height), nil
	})
}
