package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/version"
	"repro/internal/workload"
)

// GCPause quantifies the concurrent-GC pause story: the same read and
// commit workload runs twice over a POS-Tree version history — once with no
// collector (the baseline) and once with back-to-back GCRetainRecent passes
// racing it — and the experiment reports the foreground latency
// distributions side by side. Before the concurrent pass existed, a GC held
// the repository lock for its whole mark+sweep, so every read in flight
// stalled for a full pass; with the write barrier and reader pins the
// expected penalty is bounded lock-hold windows (snapshot, log prune,
// hooks) plus store-level sweep contention.
//
// The first table is the pause evidence: read and commit latency
// percentiles for both phases. The second reports the collector side: how
// many passes ran during the measured window, how long a pass takes, how
// much it swept, and how many commits lost the flush-before-mark race
// (ErrCommitRaced — the writer retries those).
func GCPause(sc Scale) ([]*Table, error) {
	records := sc.YCSBCounts[0]
	keep := sc.RetentionKeep
	if keep < 1 {
		keep = 1
	}

	cand := CandidateSet(sc)[0] // POS-Tree, the flagship write path
	idx, err := cand.New()
	if err != nil {
		return nil, fmt.Errorf("gcpause: %w", err)
	}
	y := workload.NewYCSB(workload.YCSBConfig{Records: records, Seed: 17})
	idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		ReleaseIndex(idx)
		return nil, fmt.Errorf("gcpause: load: %w", err)
	}
	repo := version.NewRepo(idx.Store())
	RegisterLoaders(repo, sc)
	if _, err := repo.Commit("main", idx, "initial load"); err != nil {
		ReleaseIndex(idx)
		return nil, fmt.Errorf("gcpause: %w", err)
	}
	// Seed a history deeper than the retention window so the first pass has
	// real work.
	cur := idx
	for v := 1; v < sc.RetentionVersions; v++ {
		if cur, err = commitUpdateVersion(repo, cur, y, records, sc.RetentionUpdates, v); err != nil {
			ReleaseIndex(idx)
			return nil, fmt.Errorf("gcpause: seed v%d: %w", v, err)
		}
	}

	idle, err := gcpausePhase(repo, y, records, sc, keep, false)
	if err != nil {
		ReleaseIndex(idx)
		return nil, fmt.Errorf("gcpause: idle phase: %w", err)
	}
	gc, err := gcpausePhase(repo, y, records, sc, keep, true)
	if err != nil {
		ReleaseIndex(idx)
		return nil, fmt.Errorf("gcpause: gc phase: %w", err)
	}

	ratio := 0.0
	if p := Percentile(idle.reads, 0.99); p > 0 {
		ratio = float64(Percentile(gc.reads, 0.99)) / float64(p)
	}
	latTable := &Table{
		ID:      "GCPause(a)",
		Title:   "foreground latency with and without a concurrent GC",
		XLabel:  "workload / phase",
		Columns: []string{"p50(µs)", "p95(µs)", "p99(µs)", "mean(µs)"},
		Note: fmt.Sprintf("POS-Tree, %d records, %d reads/phase, churn %d updates/commit; p99 read ratio gc/idle = %s",
			records, len(idle.reads), sc.RetentionUpdates, f2(ratio)),
	}
	for _, row := range []struct {
		name    string
		samples []time.Duration
	}{
		{"read / no GC", idle.reads},
		{"read / during GC", gc.reads},
		{"commit / no GC", idle.commits},
		{"commit / during GC", gc.commits},
	} {
		latTable.AddRow(row.name,
			us(Percentile(row.samples, 0.50)), us(Percentile(row.samples, 0.95)),
			us(Percentile(row.samples, 0.99)), us(Mean(row.samples)))
	}

	gcTable := &Table{
		ID:      "GCPause(b)",
		Title:   "collector accounting over the measured window",
		XLabel:  "index",
		Columns: []string{"Passes", "MeanPass(ms)", "P99Pass(ms)", "SweptNodes", "RacedCommits"},
		Note:    fmt.Sprintf("GCRetainRecent(%d) back-to-back while the foreground ran", keep),
	}
	gcTable.AddRow(cand.Name,
		fmt.Sprint(len(gc.passes)),
		f2(float64(Mean(gc.passes))/float64(time.Millisecond)),
		f2(float64(Percentile(gc.passes, 0.99))/float64(time.Millisecond)),
		fmt.Sprint(gc.swept), fmt.Sprint(gc.raced))

	ReleaseIndex(idx)
	return []*Table{latTable, gcTable}, nil
}

// gcpauseResult is one phase's measurements.
type gcpauseResult struct {
	reads   []time.Duration
	commits []time.Duration
	passes  []time.Duration
	swept   int64
	raced   int
}

// gcpausePhase runs one measurement phase: the caller goroutine samples
// read latency on a pinned head view while a churn writer commits update
// versions; with withGC set, a collector goroutine additionally runs
// retention passes back to back. The churn writer runs in both phases so
// the only variable between them is the collector.
func gcpausePhase(repo *version.Repo, y *workload.YCSB, records int, sc Scale, keep int, withGC bool) (gcpauseResult, error) {
	var res gcpauseResult
	view, pin, err := repo.CheckoutBranchPinned("main")
	if err != nil {
		return res, err
	}
	defer pin.Release()

	var (
		stop     atomic.Bool
		passes   atomic.Int64
		commits  atomic.Int64
		firstErr atomic.Pointer[error]
		mu       sync.Mutex // guards res.commits / res.passes from the goroutines
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		if err != nil && firstErr.CompareAndSwap(nil, &err) {
			stop.Store(true)
		}
	}

	// Churn writer: keeps committing so the store always has fresh garbage
	// and the commit gate is exercised. ErrCommitRaced is the documented
	// retry path, counted, not fatal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := 1000
		for !stop.Load() {
			idx, err := repo.CheckoutBranch("main")
			if err != nil {
				fail(err)
				return
			}
			next, err := updateVersion(idx, y, records, sc.RetentionUpdates, gen)
			if err != nil {
				fail(err)
				return
			}
			start := time.Now()
			_, err = repo.Commit("main", next, fmt.Sprintf("churn %d", gen))
			d := time.Since(start)
			if errors.Is(err, version.ErrCommitRaced) {
				mu.Lock()
				res.raced++
				mu.Unlock()
				continue
			}
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			res.commits = append(res.commits, d)
			mu.Unlock()
			commits.Add(1)
			gen++
		}
	}()

	if withGC {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				start := time.Now()
				st, err := repo.GCRetainRecent(keep)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				res.passes = append(res.passes, time.Since(start))
				res.swept += st.Store.SweptNodes
				mu.Unlock()
				passes.Add(1)
			}
		}()
	}

	// Foreground reads on the pinned view. The phase ends when the read
	// sample budget is met, the commit row has a minimum sample count, and,
	// in the GC phase, at least one full pass completed during the window.
	const minCommits = 8
	rng := rand.New(rand.NewSource(23))
	res.reads = make([]time.Duration, 0, sc.Ops)
	for len(res.reads) < sc.Ops || commits.Load() < minCommits || (withGC && passes.Load() == 0) {
		if stop.Load() {
			break
		}
		k := y.Key(rng.Intn(records))
		start := time.Now()
		_, _, err := view.Get(k)
		d := time.Since(start)
		if err != nil {
			fail(err)
			break
		}
		if len(res.reads) < sc.Ops*2 { // cap memory if a pass takes long
			res.reads = append(res.reads, d)
		}
	}
	stop.Store(true)
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	return res, nil
}

// updateVersion applies one churn batch of updates to idx and returns the
// new version.
func updateVersion(idx core.Index, y *workload.YCSB, records, updates, gen int) (core.Index, error) {
	z := workload.NewZipfian(uint64(records), 0.5, int64(gen)*131)
	batch := make([]core.Entry, updates)
	for j := range batch {
		id := int(z.Next())
		batch[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, gen)}
	}
	return idx.PutBatch(batch)
}

// commitUpdateVersion is updateVersion plus the commit, used to seed the
// history.
func commitUpdateVersion(repo *version.Repo, idx core.Index, y *workload.YCSB, records, updates, gen int) (core.Index, error) {
	next, err := updateVersion(idx, y, records, updates, gen)
	if err != nil {
		return nil, err
	}
	if _, err := repo.Commit("main", next, fmt.Sprintf("version %d", gen)); err != nil {
		return nil, err
	}
	return next, nil
}
