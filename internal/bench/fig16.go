package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig16 reproduces Figure 16: storage usage and node counts on Ethereum
// transaction data, one index instance per block over a shared store.
func Fig16(sc Scale) ([]*Table, error) {
	cands := CandidateSet(sc)
	storage := &Table{
		ID:      "Figure 16(a)",
		Title:   "Ethereum storage usage (MB)",
		XLabel:  "#Blocks",
		Columns: candidateNames(cands),
	}
	nodes := &Table{
		ID:      "Figure 16(b)",
		Title:   "Ethereum #nodes (x1000)",
		XLabel:  "#Blocks",
		Columns: candidateNames(cands),
	}
	gen := workload.NewEthereum(workload.EthConfig{
		Blocks: sc.EthBlocks, TxPerBlock: sc.EthTxPerBlock, Seed: 11,
	})
	b := sc.EthBlocks
	checkpoints := []int{b / 3, 2 * b / 3, b}

	type cells struct{ storage, nodes []string }
	perCand := make([]cells, len(cands))
	for ci, cand := range cands {
		var versions []core.Index
		cpi := 0
		for bi := 1; bi <= b; bi++ {
			idx, err := cand.New()
			if err != nil {
				return nil, err
			}
			next, err := idx.PutBatch(gen.BlockAt(bi - 1).Txs)
			if err != nil {
				return nil, err
			}
			versions = append(versions, next)
			if cpi < len(checkpoints) && bi == checkpoints[cpi] {
				bytes, count, err := storageOf(versions)
				if err != nil {
					return nil, fmt.Errorf("fig16 %s: %w", cand.Name, err)
				}
				perCand[ci].storage = append(perCand[ci].storage, f2(MB(bytes)))
				perCand[ci].nodes = append(perCand[ci].nodes, f1(float64(count)/1000))
				cpi++
			}
		}
		ReleaseVersions(versions) // one store per block
	}
	for i, cp := range checkpoints {
		storageCells := make([]string, len(cands))
		nodeCells := make([]string, len(cands))
		for ci := range cands {
			storageCells[ci] = perCand[ci].storage[i]
			nodeCells[ci] = perCand[ci].nodes[i]
		}
		storage.AddRow(fmt.Sprint(cp), storageCells...)
		nodes.AddRow(fmt.Sprint(cp), nodeCells...)
	}
	return []*Table{storage, nodes}, nil
}
