package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/store"
)

// Report is the machine-readable form of one siribench run, written by
// cmd/siribench -json. It carries everything the text tables print —
// ops/s cells per figure — plus the aggregate store accounting per
// experiment, so successive PRs can be compared as a perf trajectory
// (CI uploads one BENCH_<pr>.json per run as an artifact).
type Report struct {
	Scale       string             `json:"scale"`
	Store       string             `json:"store"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	StartedAt   time.Time          `json:"started_at"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's tables plus run metadata.
type ExperimentResult struct {
	Name      string  `json:"name"`
	Desc      string  `json:"desc"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// StoreStats aggregates the accounting of every store the experiment
	// opened (one per candidate per cell), snapshotted before release: the
	// raw-vs-unique node and byte series behind the storage figures.
	StoreStats store.Stats `json:"store_stats"`
	Tables     []*Table    `json:"tables"`
}

// NewReport starts a report for one run.
func NewReport(scale, storeDesc string) *Report {
	return &Report{
		Scale:     scale,
		Store:     storeDesc,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		StartedAt: time.Now().UTC(),
	}
}

// Add records one finished experiment.
func (r *Report) Add(e Experiment, tables []*Table, stats store.Stats, elapsed time.Duration) {
	r.Experiments = append(r.Experiments, ExperimentResult{
		Name:       e.Name,
		Desc:       e.Desc,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		StoreStats: stats,
		Tables:     tables,
	})
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: report: %w", err)
	}
	return nil
}
