package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forkbase"
	"repro/internal/hash"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/mvmbt"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

// clientCacheBytes bounds the client-side node cache in the system
// experiments (§5.6.1: "Forkbase caches the nodes at clients").
const clientCacheBytes = 64 << 20

// clientCacheFor resolves the scale's client-cache selection: 0 keeps the
// paper default, negative disables caching.
func clientCacheFor(sc Scale) int64 {
	switch {
	case sc.ClientCacheBytes > 0:
		return sc.ClientCacheBytes
	case sc.ClientCacheBytes < 0:
		return 0
	default:
		return clientCacheBytes
	}
}

// servedCandidate pairs an index constructor with the Loader a client needs
// to interpret its nodes.
type servedCandidate struct {
	name   string
	new    func() (core.Index, error)
	loader forkbase.Loader
}

func servedCandidates(sc Scale) []servedCandidate {
	posCfg := postree.ConfigForNodeSize(sc.NodeSize)
	mbtCfg := mbt.Config{Capacity: sc.MBTBuckets, Fanout: 32}
	mvCfg := mvmbt.ConfigForNodeSize(sc.NodeSize)
	return []servedCandidate{
		{
			name: "POS-Tree",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return postree.New(s, posCfg), nil
			},
			loader: func(s store.Store, root hash.Hash, height int) core.Index {
				return postree.Load(s, posCfg, root, height)
			},
		},
		{
			name: "MBT",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mbt.New(s, mbtCfg)
			},
			loader: func(s store.Store, root hash.Hash, _ int) core.Index {
				t, err := mbt.Load(s, mbtCfg, root)
				if err != nil {
					panic(err) // Load only validates config; cfg is fixed
				}
				return t
			},
		},
		{
			name: "MPT",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mpt.New(s), nil
			},
			loader: func(s store.Store, root hash.Hash, _ int) core.Index {
				return mpt.Load(s, root)
			},
		},
		{
			name: "MVMB+-Tree",
			new: func() (core.Index, error) {
				s, err := sc.NewStore()
				if err != nil {
					return nil, err
				}
				return mvmbt.New(s, mvCfg), nil
			},
			loader: func(s store.Store, root hash.Hash, height int) core.Index {
				return mvmbt.Load(s, mvCfg, root, height)
			},
		},
	}
}

// Fig21 reproduces Figure 21: system-level throughput with the indexes
// integrated into the Forkbase-style engine — a single servlet and a single
// client over TCP, client-side node caching for reads, server-side writes.
func Fig21(sc Scale) ([]*Table, error) {
	cands := servedCandidates(sc)
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.name
	}
	read := &Table{
		ID:      "Figure 21(a)",
		Title:   "Forkbase-integrated read throughput (Kops/s)",
		XLabel:  "#Records",
		Columns: names,
	}
	write := &Table{
		ID:      "Figure 21(b)",
		Title:   "Forkbase-integrated write throughput (Kops/s)",
		XLabel:  "#Records",
		Columns: names,
	}
	for _, n := range sc.YCSBCounts {
		readCells := make([]string, 0, len(cands))
		writeCells := make([]string, 0, len(cands))
		for _, cand := range cands {
			rt, wt, err := fig21Cell(sc, cand, n)
			if err != nil {
				return nil, fmt.Errorf("fig21 %s n=%d: %w", cand.name, n, err)
			}
			readCells = append(readCells, f1(rt/1000))
			writeCells = append(writeCells, f1(wt/1000))
		}
		read.AddRow(fmt.Sprint(n), readCells...)
		write.AddRow(fmt.Sprint(n), writeCells...)
	}
	return []*Table{read, write}, nil
}

func fig21Cell(sc Scale, cand servedCandidate, n int) (readTput, writeTput float64, err error) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: n, Seed: 21})
	idx, err := cand.new()
	if err != nil {
		return 0, 0, err
	}
	defer ReleaseIndex(idx) // runs after srv.Close: handlers are done
	idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		return 0, 0, err
	}
	srv := forkbase.NewServlet(idx)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	cli, err := forkbase.Dial(addr, cand.loader, clientCacheFor(sc))
	if err != nil {
		return 0, 0, err
	}
	defer cli.Close()

	// Read workload through the caching client.
	readOps := sc.Ops / 2
	z := workload.NewZipfian(uint64(n), 0, 2121)
	start := time.Now()
	for i := 0; i < readOps; i++ {
		key := y.Key(int(z.Next()))
		if _, ok, err := cli.Get(key); err != nil {
			return 0, 0, err
		} else if !ok {
			return 0, 0, fmt.Errorf("key %q missing", key)
		}
	}
	readTput = float64(readOps) / time.Since(start).Seconds()

	// Write workload applied server-side in batches.
	writeOps := sc.Ops / 2
	batch := make([]core.Entry, 0, sc.Batch)
	start = time.Now()
	for i := 0; i < writeOps; i++ {
		id := int(z.Next())
		batch = append(batch, core.Entry{Key: y.Key(id), Value: y.Value(id, 5000+i)})
		if len(batch) >= sc.Batch {
			if err := cli.PutBatch(batch); err != nil {
				return 0, 0, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := cli.PutBatch(batch); err != nil {
			return 0, 0, err
		}
	}
	writeTput = float64(writeOps) / time.Since(start).Seconds()
	return readTput, writeTput, nil
}
