package bench

import "fmt"

// Experiment is one runnable paper artifact.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig6", "table3").
	Name string
	// Desc summarizes what the experiment reproduces.
	Desc string
	// Run executes the experiment at the given scale.
	Run func(Scale) ([]*Table, error)
}

// Experiments lists every reproduced table and figure in paper order.
// Every Run is wrapped with store tracking, so stores opened through
// Scale.NewStore — disk-backed ones in particular — are released when the
// experiment returns, success or error.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "storage and transmission time, deduplicated vs raw", tracked(Fig01)},
		{"fig6", "YCSB throughput grid: skew × write ratio × dataset size", tracked(Fig06)},
		{"fig7", "throughput on Wiki and Ethereum datasets", tracked(Fig07)},
		{"fig8", "diff latency between independently loaded versions", tracked(Fig08)},
		{"fig9", "traversed tree height distribution", tracked(Fig09)},
		{"fig10", "YCSB latency distributions (read/write × balanced/skewed)", tracked(Fig10)},
		{"fig11", "Wiki latency distributions", tracked(Fig11)},
		{"fig12", "Ethereum latency distributions", tracked(Fig12)},
		{"fig13", "MBT lookup breakdown: load vs scan", tracked(Fig13)},
		{"fig14", "single-group storage usage and node counts", tracked(Fig14)},
		{"fig15", "Wiki storage usage and node counts", tracked(Fig15)},
		{"fig16", "Ethereum storage usage and node counts", tracked(Fig16)},
		{"fig17", "collaboration metrics vs overlap ratio", tracked(Fig17)},
		{"fig18", "collaboration metrics vs batch size", tracked(Fig18)},
		{"table3", "deduplication ratio vs structure parameters", tracked(Table3)},
		{"fig19", "ablation: structurally invariant property", tracked(Fig19)},
		{"fig20", "ablation: recursively identical property", tracked(Fig20)},
		{"fig21", "system throughput integrated with Forkbase engine", tracked(Fig21)},
		{"fig22", "Forkbase (POS-Tree) vs Noms (Prolly Tree)", tracked(Fig22)},
	}
}

// tracked wraps an experiment so every store its Scale.NewStore opens is
// released when the run finishes, on every return path.
func tracked(run func(Scale) ([]*Table, error)) func(Scale) ([]*Table, error) {
	return func(sc Scale) ([]*Table, error) {
		sc, release := sc.WithStoreTracking()
		defer release()
		return run(sc)
	}
}

// ByName resolves an experiment by CLI name.
func ByName(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}
