package bench

import (
	"fmt"

	"repro/internal/store"
)

// Experiment is one runnable paper artifact.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig6", "table3").
	Name string
	// Desc summarizes what the experiment reproduces.
	Desc string
	// Run executes the experiment at the given scale.
	Run func(Scale) ([]*Table, error)
	// raw is the unwrapped run function, kept so RunWithStats can install
	// its own store tracker and read the stats before release.
	raw func(Scale) ([]*Table, error)
}

// Experiments lists every reproduced table and figure in paper order.
// Every Run is wrapped with store tracking, so stores opened through
// Scale.NewStore — disk-backed ones in particular — are released when the
// experiment returns, success or error.
func Experiments() []Experiment {
	defs := []struct {
		name, desc string
		run        func(Scale) ([]*Table, error)
	}{
		{"fig1", "storage and transmission time, deduplicated vs raw", Fig01},
		{"fig6", "YCSB throughput grid: skew × write ratio × dataset size", Fig06},
		{"fig7", "throughput on Wiki and Ethereum datasets", Fig07},
		{"fig8", "diff latency between independently loaded versions", Fig08},
		{"fig9", "traversed tree height distribution", Fig09},
		{"fig10", "YCSB latency distributions (read/write × balanced/skewed)", Fig10},
		{"fig11", "Wiki latency distributions", Fig11},
		{"fig12", "Ethereum latency distributions", Fig12},
		{"fig13", "MBT lookup breakdown: load vs scan", Fig13},
		{"fig14", "single-group storage usage and node counts", Fig14},
		{"fig15", "Wiki storage usage and node counts", Fig15},
		{"fig16", "Ethereum storage usage and node counts", Fig16},
		{"fig17", "collaboration metrics vs overlap ratio", Fig17},
		{"fig18", "collaboration metrics vs batch size", Fig18},
		{"table3", "deduplication ratio vs structure parameters", Table3},
		{"fig19", "ablation: structurally invariant property", Fig19},
		{"fig20", "ablation: recursively identical property", Fig20},
		{"fig21", "system throughput integrated with Forkbase engine", Fig21},
		{"fig22", "Forkbase (POS-Tree) vs Noms (Prolly Tree)", Fig22},
		{"scan", "ordered range scans: selectivity sweep + YCSB-E mix (extension)", ScanExp},
		{"retention", "version retention: commit K versions, GC to newest N, report reclaimed bytes (extension)", RetentionExp},
		{"commitpath", "parallel commit pipeline: batch throughput vs hash workers, warm-Get allocs/op (extension)", CommitPath},
		{"gcpause", "read/commit latency during concurrent GC vs an idle baseline (extension)", GCPause},
		{"faults", "crash-recovery time vs segment count + verify-on-read overhead (extension)", FaultsExp},
		{"ingest", "write-optimized ingest: WAL+memtable sustained throughput vs direct per-batch commits, read-during-merge latency (extension)", IngestExp},
		{"secondary", "secondary indexes + planner: insert overhead with maintenance, node reads for narrow queries indexed vs scanned (extension)", SecondaryExp},
		{"overload", "serving-layer overload: goodput and p99 vs offered load 1x-8x, load shedding on vs off (extension)", OverloadExp},
	}
	out := make([]Experiment, len(defs))
	for i, d := range defs {
		out[i] = Experiment{Name: d.name, Desc: d.desc, Run: tracked(d.run), raw: d.run}
	}
	return out
}

// tracked wraps an experiment so every store its Scale.NewStore opens is
// released when the run finishes, on every return path.
func tracked(run func(Scale) ([]*Table, error)) func(Scale) ([]*Table, error) {
	return func(sc Scale) ([]*Table, error) {
		sc, release := sc.WithStoreTracking()
		defer release()
		return run(sc)
	}
}

// RunWithStats runs e at sc and also returns the aggregate store accounting
// across every store the run opened, snapshotted before the stores are
// released (a released disk store has deleted its files). It is the entry
// point for the machine-readable report of cmd/siribench -json; plain Run
// discards the stats with the stores.
func RunWithStats(e Experiment, sc Scale) ([]*Table, store.Stats, error) {
	run := e.raw
	if run == nil {
		run = e.Run // foreign Experiment value: stats will cover nothing
	}
	sc, release := sc.WithStoreTracking()
	defer release()
	tables, err := run(sc)
	stats := sc.tracker.aggregate()
	return tables, stats, err
}

// ByName resolves an experiment by CLI name.
func ByName(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}
