package bench

import "fmt"

// Experiment is one runnable paper artifact.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig6", "table3").
	Name string
	// Desc summarizes what the experiment reproduces.
	Desc string
	// Run executes the experiment at the given scale.
	Run func(Scale) ([]*Table, error)
}

// Experiments lists every reproduced table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "storage and transmission time, deduplicated vs raw", Fig01},
		{"fig6", "YCSB throughput grid: skew × write ratio × dataset size", Fig06},
		{"fig7", "throughput on Wiki and Ethereum datasets", Fig07},
		{"fig8", "diff latency between independently loaded versions", Fig08},
		{"fig9", "traversed tree height distribution", Fig09},
		{"fig10", "YCSB latency distributions (read/write × balanced/skewed)", Fig10},
		{"fig11", "Wiki latency distributions", Fig11},
		{"fig12", "Ethereum latency distributions", Fig12},
		{"fig13", "MBT lookup breakdown: load vs scan", Fig13},
		{"fig14", "single-group storage usage and node counts", Fig14},
		{"fig15", "Wiki storage usage and node counts", Fig15},
		{"fig16", "Ethereum storage usage and node counts", Fig16},
		{"fig17", "collaboration metrics vs overlap ratio", Fig17},
		{"fig18", "collaboration metrics vs batch size", Fig18},
		{"table3", "deduplication ratio vs structure parameters", Table3},
		{"fig19", "ablation: structurally invariant property", Fig19},
		{"fig20", "ablation: recursively identical property", Fig20},
		{"fig21", "system throughput integrated with Forkbase engine", Fig21},
		{"fig22", "Forkbase (POS-Tree) vs Noms (Prolly Tree)", Fig22},
	}
}

// ByName resolves an experiment by CLI name.
func ByName(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}
