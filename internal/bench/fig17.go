package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// collabRun executes the diverse-group collaboration scenario of §5.4.2:
// `parties` users each initialize the same dataset, then run overlapping
// workloads in batches. It returns every version of every party's index.
func collabRun(cand Candidate, sc Scale, parties int, overlap float64, batch int) ([]core.Index, error) {
	y := workload.NewYCSB(workload.YCSBConfig{Records: sc.CollabInit, Seed: 17})
	initData := y.Dataset()
	partyOps := workload.OverlapWorkload(y, parties, sc.CollabOps, overlap, 1717)

	var versions []core.Index
	for p := 0; p < parties; p++ {
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		head, err := LoadBatched(idx, initData, batch)
		if err != nil {
			return nil, err
		}
		versions = append(versions, head)
		more, err := versionedLoad(head, partyOps[p], batch)
		if err != nil {
			return nil, err
		}
		versions = append(versions, more...)
	}
	return versions, nil
}

// Fig17 reproduces Figure 17: storage, node count, deduplication ratio and
// node sharing ratio as the cross-party overlap ratio varies.
func Fig17(sc Scale) ([]*Table, error) {
	return collabTables(sc, "Figure 17", "Overlap Ratio (%)",
		func(ratio int) (float64, int) { return float64(ratio) / 100, sc.Batch },
		[]int{10, 20, 40, 60, 80, 100})
}

// collabTables runs the collaboration scenario over a parameter sweep and
// reports the four §5.4.2 metrics.
func collabTables(sc Scale, figure, xlabel string, param func(x int) (overlap float64, batch int), xs []int) ([]*Table, error) {
	cands := CandidateSet(sc)
	storage := &Table{ID: figure + "(a)", Title: "storage usage (MB)", XLabel: xlabel, Columns: candidateNames(cands)}
	nodes := &Table{ID: figure + "(b)", Title: "#nodes (x1000)", XLabel: xlabel, Columns: candidateNames(cands)}
	dedup := &Table{ID: figure + "(c)", Title: "deduplication ratio", XLabel: xlabel, Columns: candidateNames(cands)}
	sharing := &Table{ID: figure + "(d)", Title: "node sharing ratio", XLabel: xlabel, Columns: candidateNames(cands)}
	note := fmt.Sprintf("%d parties, %d initial records, %d ops each",
		sc.CollabParties, sc.CollabInit, sc.CollabOps)
	storage.Note, nodes.Note, dedup.Note, sharing.Note = note, note, note, note

	for _, x := range xs {
		overlap, batch := param(x)
		storageCells := make([]string, 0, len(cands))
		nodeCells := make([]string, 0, len(cands))
		dedupCells := make([]string, 0, len(cands))
		sharingCells := make([]string, 0, len(cands))
		for _, cand := range cands {
			versions, err := collabRun(cand, sc, sc.CollabParties, overlap, batch)
			if err != nil {
				return nil, fmt.Errorf("%s %s x=%d: %w", figure, cand.Name, x, err)
			}
			st, err := core.AnalyzeVersions(versions...)
			ReleaseVersions(versions)
			if err != nil {
				return nil, err
			}
			storageCells = append(storageCells, f2(MB(st.UnionBytes)))
			nodeCells = append(nodeCells, f1(float64(st.UnionNodes)/1000))
			dedupCells = append(dedupCells, f3(st.DedupRatio()))
			sharingCells = append(sharingCells, f3(st.NodeSharingRatio()))
		}
		storage.AddRow(fmt.Sprint(x), storageCells...)
		nodes.AddRow(fmt.Sprint(x), nodeCells...)
		dedup.AddRow(fmt.Sprint(x), dedupCells...)
		sharing.AddRow(fmt.Sprint(x), sharingCells...)
	}
	return []*Table{storage, nodes, dedup, sharing}, nil
}
