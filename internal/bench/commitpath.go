package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prolly"
)

// commitPathReps is how many times each throughput cell is measured; the
// best run is reported, which suppresses scheduler noise at small scales.
const commitPathReps = 3

// CommitPath measures the parallel commit pipeline end to end (an extension
// experiment; no paper figure corresponds). Table (a) reports batch-commit
// throughput per index class as the staged-writer worker count grows — the
// write-path cost the paper attributes to Merkle node encode+hash (§4),
// which is exactly the work the pipeline fans across cores. Table (b)
// reports the read path's allocations per warm Get, the figure the
// zero-copy decode contracts and decoded-node caches drive down. CI records
// both in the perf-trajectory JSON, so the serial-vs-parallel ratio and the
// allocs/op trend are comparable across PRs.
func CommitPath(sc Scale) ([]*Table, error) {
	n := sc.LatencyRecords
	if n <= 0 {
		n = 1000
	}
	entries := make([]core.Entry, n)
	for i := range entries {
		entries[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("user%08d", (i*2654435761)%n)),
			Value: []byte(fmt.Sprintf("value-%08d-%08d", i, i)),
		}
	}

	candidates := commitPathCandidates(sc)
	names := make([]string, len(candidates))
	for i, c := range candidates {
		names[i] = c.Name
	}

	workerCounts := []int{1, 2, 4, 8}
	if g := runtime.GOMAXPROCS(0); g > 8 {
		workerCounts = append(workerCounts, g)
	}

	tput := &Table{
		ID:      "CommitPath(a)",
		Title:   fmt.Sprintf("batch commit throughput, %d-entry batch into an empty index (entries/s)", n),
		XLabel:  "workers",
		Columns: names,
		Note:    "workers = staged-writer hash workers (core.SetCommitWorkers); row 1 is the serial writer baseline",
	}
	for _, wc := range workerCounts {
		prev := core.SetCommitWorkers(wc)
		cells := make([]string, len(candidates))
		for ci, cand := range candidates {
			best := time.Duration(0)
			for rep := 0; rep < commitPathReps; rep++ {
				idx, err := cand.New()
				if err != nil {
					core.SetCommitWorkers(prev)
					return nil, err
				}
				start := time.Now()
				if _, err := idx.PutBatch(entries); err != nil {
					core.SetCommitWorkers(prev)
					return nil, err
				}
				elapsed := time.Since(start)
				ReleaseIndex(idx)
				if best == 0 || elapsed < best {
					best = elapsed
				}
			}
			cells[ci] = f1(float64(n) / best.Seconds())
		}
		core.SetCommitWorkers(prev)
		tput.AddRow(fmt.Sprintf("%d", wc), cells...)
	}

	allocs := &Table{
		ID:      "CommitPath(b)",
		Title:   "read path: allocations per warm Get (allocs/op)",
		XLabel:  "metric",
		Columns: names,
		Note:    "testing.AllocsPerRun over resident keys after cache warmup; the zero-copy decode + decoded-node cache path",
	}
	cells := make([]string, len(candidates))
	for ci, cand := range candidates {
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		loaded, err := idx.PutBatch(entries)
		if err != nil {
			return nil, err
		}
		// Warm the decoded-node caches, then measure.
		probe := 0
		get := func() {
			k := entries[probe%len(entries)].Key
			probe++
			if _, _, err := loaded.Get(k); err != nil {
				panic(err)
			}
		}
		for i := 0; i < len(entries); i++ {
			get()
		}
		cells[ci] = f2(testing.AllocsPerRun(400, get))
		ReleaseIndex(loaded)
	}
	allocs.AddRow("allocs/op", cells...)

	return []*Table{tput, allocs}, nil
}

// commitPathCandidates is the paper's four candidates plus the Prolly Tree,
// so the worker sweep covers every commit strategy in the repository.
func commitPathCandidates(sc Scale) []Candidate {
	cands := CandidateSet(sc)
	cands = append(cands, Candidate{
		Name: "Prolly-Tree",
		New: func() (core.Index, error) {
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			return prolly.New(s, prolly.ConfigForNodeSize(sc.NodeSize)), nil
		},
	})
	return cands
}
