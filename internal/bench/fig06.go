package bench

import (
	"fmt"

	"repro/internal/workload"
)

// Fig06 reproduces Figure 6: YCSB throughput for every combination of
// skew θ ∈ {0, 0.5, 0.9} and write ratio ∈ {0, 0.5, 1}, across dataset
// sizes, for all four candidates. One table per subfigure (a)–(i).
func Fig06(sc Scale) ([]*Table, error) {
	thetas := []float64{0, 0.5, 0.9}
	writeRatios := []float64{0, 0.5, 1}
	cands := CandidateSet(sc)

	var tables []*Table
	sub := 'a'
	for _, theta := range thetas {
		for _, wr := range writeRatios {
			t := &Table{
				ID:      fmt.Sprintf("Figure 6(%c)", sub),
				Title:   fmt.Sprintf("YCSB throughput (Kops/s), θ=%.1f, write ratio=%.1f", theta, wr),
				XLabel:  "#Records",
				Columns: candidateNames(cands),
			}
			sub++
			for _, n := range sc.YCSBCounts {
				cells := make([]string, 0, len(cands))
				for _, cand := range cands {
					tput, err := fig06Cell(sc, cand, n, theta, wr)
					if err != nil {
						return nil, fmt.Errorf("fig6 %s n=%d: %w", cand.Name, n, err)
					}
					cells = append(cells, f1(tput/1000))
				}
				t.AddRow(fmt.Sprint(n), cells...)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// fig06Cell loads n records into a fresh instance of cand and measures the
// operation throughput for the (theta, writeRatio) workload.
func fig06Cell(sc Scale, cand Candidate, n int, theta, writeRatio float64) (float64, error) {
	y := workload.NewYCSB(workload.YCSBConfig{
		Records: n, Theta: theta, WriteRatio: writeRatio, Seed: 42,
	})
	idx, err := cand.New()
	if err != nil {
		return 0, err
	}
	defer ReleaseIndex(idx) // all versions share idx's store
	idx, err = LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		return 0, err
	}
	tput, _, err := Throughput(idx, y.Ops(sc.Ops), WriteBatchFor(cand, sc.Batch))
	return tput, err
}

func candidateNames(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Name
	}
	return out
}
