package bench

import (
	"fmt"

	"repro/internal/mbt"
	"repro/internal/store"
	"repro/internal/workload"
)

// Fig13 reproduces Figure 13: the MBT lookup latency breakdown. As the
// record count grows with a fixed bucket count, the tree-traversal and
// node-loading phase stays constant while the bucket decode-and-scan phase
// grows linearly — the root cause of MBT's read degradation in Figure 6.
func Fig13(sc Scale) ([]*Table, error) {
	t := &Table{
		ID:      "Figure 13",
		Title:   "MBT lookup breakdown (µs per op)",
		XLabel:  "#Records",
		Columns: []string{"Load time", "Scan time"},
		Note:    fmt.Sprintf("%d buckets, fanout 32", sc.MBTBuckets),
	}
	counts := sc.YCSBCounts
	for _, n := range counts {
		y := workload.NewYCSB(workload.YCSBConfig{Records: n, Seed: 13})
		s, err := sc.NewStore()
		if err != nil {
			return nil, err
		}
		tree, err := mbt.New(s, mbt.Config{Capacity: sc.MBTBuckets, Fanout: 32})
		if err != nil {
			store.Release(s)
			return nil, err
		}
		idx, err := LoadBatched(tree, y.Dataset(), sc.Batch)
		if err != nil {
			store.Release(s)
			return nil, err
		}
		m := idx.(*mbt.Tree)
		probes := sc.Ops / 4
		if probes < 200 {
			probes = 200
		}
		var load, scan float64
		z := workload.NewZipfian(uint64(n), 0, 13)
		for i := 0; i < probes; i++ {
			key := y.Key(int(z.Next()))
			_, ok, bd, err := m.GetBreakdown(key)
			if err != nil {
				store.Release(s)
				return nil, err
			}
			if !ok {
				store.Release(s)
				return nil, fmt.Errorf("fig13: key %q missing", key)
			}
			load += float64(bd.Load.Nanoseconds())
			scan += float64(bd.Scan.Nanoseconds())
		}
		t.AddRow(fmt.Sprint(n),
			f2(load/float64(probes)/1000),
			f2(scan/float64(probes)/1000))
		store.Release(s)
	}
	return []*Table{t}, nil
}
