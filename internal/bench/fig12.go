package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig12 reproduces Figure 12: latency distributions on Ethereum
// transactions under the paper's per-block-index storage model. Reads scan
// the block list for the transaction (the dominant cost, which equalizes
// the candidates); writes build the next block's index.
func Fig12(sc Scale) ([]*Table, error) {
	gen := workload.NewEthereum(workload.EthConfig{
		Blocks: sc.EthBlocks, TxPerBlock: sc.EthTxPerBlock, Seed: 11,
	})
	blocks := make([]workload.Block, sc.EthBlocks)
	for i := range blocks {
		blocks[i] = gen.BlockAt(i)
	}
	cands := CandidateSet(sc)

	read := &Table{
		ID:      "Figure 12(a)",
		Title:   "Ethereum read latency (µs): mean / p50 / p90 / p99",
		XLabel:  "Index",
		Columns: []string{"mean", "p50", "p90", "p99"},
		Note:    "reads scan the per-block index list from the newest block",
	}
	write := &Table{
		ID:      "Figure 12(b)",
		Title:   "Ethereum write latency per block build (µs/tx): mean / p50 / p90 / p99",
		XLabel:  "Index",
		Columns: []string{"mean", "p50", "p90", "p99"},
	}

	for _, cand := range cands {
		var chain []core.Index
		var writeSamples []time.Duration
		for _, b := range blocks {
			idx, err := cand.New()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			next, err := idx.PutBatch(b.Txs)
			if err != nil {
				return nil, err
			}
			writeSamples = append(writeSamples, time.Since(start)/time.Duration(len(b.Txs)))
			chain = append(chain, next)
		}

		rng := rand.New(rand.NewSource(12))
		reads := sc.Ops / 20
		if reads < 50 {
			reads = 50
		}
		var readSamples []time.Duration
		for i := 0; i < reads; i++ {
			bi := rng.Intn(len(blocks))
			tx := blocks[bi].Txs[rng.Intn(len(blocks[bi].Txs))]
			start := time.Now()
			found := false
			for j := len(chain) - 1; j >= 0; j-- {
				_, ok, err := chain[j].Get(tx.Key)
				if err != nil {
					return nil, err
				}
				if ok {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("fig12 %s: tx missing", cand.Name)
			}
			readSamples = append(readSamples, time.Since(start))
		}
		read.AddRow(cand.Name,
			us(Mean(readSamples)), us(Percentile(readSamples, 0.5)),
			us(Percentile(readSamples, 0.9)), us(Percentile(readSamples, 0.99)))
		write.AddRow(cand.Name,
			us(Mean(writeSamples)), us(Percentile(writeSamples, 0.5)),
			us(Percentile(writeSamples, 0.9)), us(Percentile(writeSamples, 0.99)))
		ReleaseVersions(chain) // one store per block
	}
	return []*Table{read, write}, nil
}
