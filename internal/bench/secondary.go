package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/secondary"
	"repro/internal/store"
	"repro/internal/version"
)

// secondaryRowsPer is how many rows share one attribute value in the
// secondary workload; it matches the plantest honesty battery so the bench
// numbers and the enforced floor measure the same query shape.
const secondaryRowsPer = 6

// SecondaryExp measures the secondary-index extension (internal/secondary +
// internal/query), for every index class.
//
// The first table is the write-side price: wall time to load and commit the
// dataset through a table with no secondary versus the same table
// maintaining one derived-attribute secondary, with the overhead as a
// percentage. Every secondary write is a read-modify-write on the primary
// (the old row decides which derived keys die), so overhead well above the
// naive 2x is expected for per-op classes.
//
// The second table is what the read side buys: store node reads for one
// narrow exact query plus one short range query, executed cold (fresh
// repo + table over the same store, empty caches), routed through the
// secondary versus forced through a primary scan. The reduction column is
// the honesty ratio the plantest battery enforces at >=5x for pruning
// classes; MBT hash-partitions its keyspace, cannot prune an ordered
// range, and is expected to show no gain.
func SecondaryExp(sc Scale) ([]*Table, error) {
	rows := sc.SecondaryRows
	if rows <= 0 {
		rows = 1200
	}
	if rows < 40*secondaryRowsPer {
		rows = 40 * secondaryRowsPer // enough cities for the probes
	}

	insTable := &Table{
		ID:      "Secondary(a)",
		Title:   fmt.Sprintf("insert cost with secondary maintenance, %d rows (ms)", rows),
		XLabel:  "index",
		Columns: []string{"Primary(ms)", "+Secondary(ms)", "Overhead"},
		Note:    "both paths commit per batch; the secondary path co-commits both roots (extension)",
	}
	readTable := &Table{
		ID:     "Secondary(b)",
		Title:  "node reads for narrow queries, indexed route vs primary scan",
		XLabel: "index",
		Columns: []string{
			"Rows", "Indexed reads", "Scan reads", "Reduction",
		},
		Note: "cold opens; one exact + one range predicate; MBT cannot prune ranges, no gain expected",
	}

	for _, cls := range ingestClasses(sc) {
		prim, withSec, err := secondaryInsertCost(sc, cls, rows)
		if err != nil {
			return nil, fmt.Errorf("secondary %s: insert: %w", cls.name, err)
		}
		overhead := (withSec/prim - 1) * 100
		insTable.AddRow(cls.name, f1(prim), f1(withSec), f1(overhead)+"%")

		matched, idxReads, scanReads, err := secondaryReadCost(sc, cls, rows)
		if err != nil {
			return nil, fmt.Errorf("secondary %s: reads: %w", cls.name, err)
		}
		readTable.AddRow(cls.name,
			fmt.Sprint(matched), fmt.Sprint(idxReads), fmt.Sprint(scanReads),
			f2(float64(scanReads)/float64(idxReads))+"x")
	}
	return []*Table{insTable, readTable}, nil
}

// secondaryRow is the workload row i: pks ascend with i and rowsPer
// consecutive rows share one city, the clustered layout a primary-key
// generator gives a derived attribute in practice.
func secondaryRow(i int) core.Entry {
	return core.Entry{
		Key:   []byte(fmt.Sprintf("pk-%06d", i)),
		Value: []byte(fmt.Sprintf("city-%04d|%030d", i/secondaryRowsPer, i)),
	}
}

// secondaryCity extracts the derived attribute: the value prefix before '|'.
func secondaryCity(_, value []byte) ([]byte, bool) {
	i := bytes.IndexByte(value, '|')
	if i < 0 {
		return nil, false
	}
	return value[:i], true
}

// secondaryLoad pushes the workload through tbl in Scale-sized batches and
// commits after each, returning the wall time.
func secondaryLoad(sc Scale, tbl *secondary.Table, rows int) (float64, error) {
	batch := sc.Batch
	if batch <= 0 {
		batch = 4000
	}
	start := time.Now()
	buf := make([]core.Entry, 0, batch)
	for i := 0; i < rows; i++ {
		buf = append(buf, secondaryRow(i))
		if len(buf) >= batch || i == rows-1 {
			if err := tbl.PutBatch(buf); err != nil {
				return 0, err
			}
			if _, err := tbl.Commit(fmt.Sprintf("load through %d", i)); err != nil {
				return 0, err
			}
			buf = buf[:0]
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

// secondaryInsertCost times the same load twice on fresh stores: through a
// table with no secondary defs, and through one maintaining the city index.
func secondaryInsertCost(sc Scale, cls ingestClass, rows int) (prim, withSec float64, err error) {
	for _, withDef := range []bool{false, true} {
		s, err := sc.NewStore()
		if err != nil {
			return 0, 0, err
		}
		repo := version.NewRepo(s)
		RegisterLoaders(repo, sc)
		var defs []secondary.Def
		if withDef {
			defs = append(defs, secondary.Def{Attr: "city", Extract: secondaryCity, New: cls.newOn})
		}
		tbl, err := secondary.Open(repo, "main", cls.newOn, defs...)
		if err != nil {
			return 0, 0, err
		}
		ms, err := secondaryLoad(sc, tbl, rows)
		if err != nil {
			return 0, 0, err
		}
		if withDef {
			withSec = ms
		} else {
			prim = ms
		}
		_ = store.Release(s)
	}
	return prim, withSec, nil
}

// secondaryQueries runs the probe pair — one exact city (rowsPer rows) and
// one three-city range — through eng, returning how many rows came back.
func secondaryQueries(eng query.Engine, rows int) (int, error) {
	cities := rows / secondaryRowsPer
	exact := []byte(fmt.Sprintf("city-%04d", cities/2))
	lo := []byte(fmt.Sprintf("city-%04d", cities/4))
	hi := []byte(fmt.Sprintf("city-%04d", cities/4+3))
	matched := 0
	for _, q := range []query.Query{
		{Attr: "city", Exact: exact},
		{Attr: "city", Lo: lo, Hi: hi},
	} {
		got, _, err := eng.Query(q)
		if err != nil {
			return 0, err
		}
		matched += len(got)
	}
	return matched, nil
}

// secondaryReadCost builds the table once over a counting store, then runs
// the probe queries from two cold opens: one routed through the secondary,
// one forced through a primary scan. Returned reads are store Gets.
func secondaryReadCost(sc Scale, cls ingestClass, rows int) (matched, idxReads, scanReads int, err error) {
	base, err := sc.NewStore()
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = store.Release(base) }()
	cs := store.NewCountingStore(base)

	repo := version.NewRepo(cs)
	RegisterLoaders(repo, sc)
	def := secondary.Def{Attr: "city", Extract: secondaryCity, New: cls.newOn}
	tbl, err := secondary.Open(repo, "main", cls.newOn, def)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := secondaryLoad(sc, tbl, rows); err != nil {
		return 0, 0, 0, err
	}

	coldEngine := func(scanOnly bool) (query.Engine, error) {
		r := version.NewRepo(cs)
		RegisterLoaders(r, sc)
		t, err := secondary.Open(r, "main", cls.newOn, def)
		if err != nil {
			return nil, err
		}
		src := query.IndexSource(t.Primary())
		if scanOnly {
			return query.NewPlanner(src).BindAttr("city", secondaryCity), nil
		}
		return query.PlannerFor(src, t), nil
	}

	indexed, err := coldEngine(false)
	if err != nil {
		return 0, 0, 0, err
	}
	before := cs.NodeReads()
	matched, err = secondaryQueries(indexed, rows)
	if err != nil {
		return 0, 0, 0, err
	}
	idxReads = int(cs.NodeReads() - before)

	scanner, err := coldEngine(true)
	if err != nil {
		return 0, 0, 0, err
	}
	before = cs.NodeReads()
	scanMatched, err := secondaryQueries(scanner, rows)
	if err != nil {
		return 0, 0, 0, err
	}
	scanReads = int(cs.NodeReads() - before)
	if scanMatched != matched {
		return 0, 0, 0, fmt.Errorf("routes disagree: indexed %d rows, scan %d", matched, scanMatched)
	}
	return matched, idxReads, scanReads, nil
}
