package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig08 reproduces Figure 8: diff latency between two versions that were
// loaded independently and in random order. Structural invariance lets the
// SIRI candidates prune identical regions by hash; the baseline, whose
// shape depends on load order, must compare record by record.
func Fig08(sc Scale) ([]*Table, error) {
	cands := CandidateSet(sc)
	t := &Table{
		ID:      "Figure 8",
		Title:   "diff latency (s) between two independently loaded versions",
		XLabel:  "#Records",
		Columns: candidateNames(cands),
		Note:    "versions differ in 1% of records; each loaded in its own random batch order",
	}
	for _, n := range sc.DiffCounts {
		y := workload.NewYCSB(workload.YCSBConfig{Records: n, Seed: 8})
		base := y.Dataset()
		// Version B: 1% of records updated.
		delta := n / 100
		if delta < 1 {
			delta = 1
		}
		other := make([]core.Entry, len(base))
		copy(other, base)
		for i := 0; i < delta; i++ {
			j := (i * 97) % n
			other[j] = core.Entry{Key: base[j].Key, Value: y.Value(j, 999)}
		}
		cells := make([]string, 0, len(cands))
		for _, cand := range cands {
			a, err := loadShuffled(cand, base, sc.Batch, 1)
			if err != nil {
				return nil, err
			}
			b, err := loadShuffled(cand, other, sc.Batch, 2)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			diffs, err := a.Diff(b)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s: %w", cand.Name, err)
			}
			elapsed := time.Since(start)
			ReleaseIndex(a)
			ReleaseIndex(b)
			if len(diffs) < delta {
				return nil, fmt.Errorf("fig8 %s: found %d diffs, want ≥ %d", cand.Name, len(diffs), delta)
			}
			cells = append(cells, f3(elapsed.Seconds()))
		}
		t.AddRow(fmt.Sprint(n), cells...)
	}
	return []*Table{t}, nil
}

// loadShuffled loads entries into a fresh instance of cand in a random
// batch order. Both diff sides share one store only when the candidate's
// New shares it; here each side gets its own store, matching two parties
// exchanging only root hashes — Diff then reads both stores through the
// respective index handles.
func loadShuffled(cand Candidate, entries []core.Entry, batch int, seed int64) (core.Index, error) {
	idx, err := cand.New()
	if err != nil {
		return nil, err
	}
	shuffled := make([]core.Entry, len(entries))
	copy(shuffled, entries)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return LoadBatched(idx, shuffled, batch)
}
