package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig07 reproduces Figure 7: throughput on the two real-world-shaped
// datasets. (a) Wiki: the corpus is loaded version by version, then uniform
// read and write workloads run against the head. (b) Ethereum: one index
// per block appended to a global block list; writes build block indexes,
// reads scan the block list for the transaction (§5.3.1).
func Fig07(sc Scale) ([]*Table, error) {
	wiki, err := fig07Wiki(sc)
	if err != nil {
		return nil, err
	}
	eth, err := fig07Eth(sc)
	if err != nil {
		return nil, err
	}
	return []*Table{wiki, eth}, nil
}

func fig07Wiki(sc Scale) (*Table, error) {
	w := workload.NewWiki(workload.WikiConfig{
		Pages: sc.WikiPages, Versions: sc.WikiVersions,
		UpdatesPerVersion: sc.WikiUpdates, Seed: 7,
	})
	cands := CandidateSet(sc)
	t := &Table{
		ID:      "Figure 7(a)",
		Title:   "Wiki throughput (Kops/s)",
		XLabel:  "Workload",
		Columns: candidateNames(cands),
		Note:    fmt.Sprintf("%d pages, %d versions", sc.WikiPages, sc.WikiVersions),
	}
	readCells := make([]string, 0, len(cands))
	writeCells := make([]string, 0, len(cands))
	for _, cand := range cands {
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		idx, err = LoadBatched(idx, w.Dataset(), sc.Batch)
		if err != nil {
			return nil, err
		}
		for v := 1; v < sc.WikiVersions; v++ {
			idx, err = idx.PutBatch(w.VersionUpdates(v))
			if err != nil {
				return nil, err
			}
		}
		readOps, writeOps := wikiOps(w, sc.WikiPages, sc.Ops)
		rt, _, err := Throughput(idx, readOps, WriteBatchFor(cand, sc.Batch))
		if err != nil {
			return nil, err
		}
		wt, _, err := Throughput(idx, writeOps, WriteBatchFor(cand, sc.Batch))
		if err != nil {
			return nil, err
		}
		readCells = append(readCells, f1(rt/1000))
		writeCells = append(writeCells, f1(wt/1000))
		ReleaseIndex(idx)
	}
	t.AddRow("Read", readCells...)
	t.AddRow("Write", writeCells...)
	return t, nil
}

// wikiOps builds uniform read and write streams over the page key space.
func wikiOps(w *workload.Wiki, pages, n int) (reads, writes []workloadOp) {
	rng := rand.New(rand.NewSource(99))
	reads = make([]workloadOp, n)
	writes = make([]workloadOp, n)
	for i := range reads {
		p := rng.Intn(pages)
		reads[i] = workloadOp{Entry: core.Entry{Key: w.Key(p)}}
		writes[i] = workloadOp{Write: true, Entry: core.Entry{
			Key: w.Key(p), Value: w.Value(p, 1_000+i),
		}}
	}
	return reads, writes
}

// blockChain mimics the paper's Ethereum setup: a linked list of per-block
// index roots, scanned from the newest block on reads.
type blockChain struct {
	versions []core.Index
}

func fig07Eth(sc Scale) (*Table, error) {
	gen := workload.NewEthereum(workload.EthConfig{
		Blocks: sc.EthBlocks, TxPerBlock: sc.EthTxPerBlock, Seed: 11,
	})
	cands := CandidateSet(sc)
	t := &Table{
		ID:      "Figure 7(b)",
		Title:   "Ethereum transaction throughput (Kops/s)",
		XLabel:  "Workload",
		Columns: candidateNames(cands),
		Note:    fmt.Sprintf("%d blocks, ~%d tx/block, per-block indexes", sc.EthBlocks, sc.EthTxPerBlock),
	}
	readCells := make([]string, 0, len(cands))
	writeCells := make([]string, 0, len(cands))
	for _, cand := range cands {
		chain := &blockChain{}
		blocks := make([]workload.Block, sc.EthBlocks)
		for i := range blocks {
			blocks[i] = gen.BlockAt(i)
		}
		// Write workload: build one index per block (batch load from
		// scratch, the paper's bottom-up-friendly path).
		txTotal := 0
		start := time.Now()
		for _, b := range blocks {
			idx, err := cand.New()
			if err != nil {
				return nil, err
			}
			idx, err = idx.PutBatch(b.Txs)
			if err != nil {
				return nil, err
			}
			chain.versions = append(chain.versions, idx)
			txTotal += len(b.Txs)
		}
		writeTput := float64(txTotal) / time.Since(start).Seconds()

		// Read workload: random (block, tx), scan the chain from the
		// newest block until the transaction is found.
		rng := rand.New(rand.NewSource(3))
		reads := sc.Ops / 10 // chain scans are O(blocks); keep bounded
		if reads < 100 {
			reads = 100
		}
		start = time.Now()
		for i := 0; i < reads; i++ {
			b := rng.Intn(len(blocks))
			tx := blocks[b].Txs[rng.Intn(len(blocks[b].Txs))]
			found := false
			for j := len(chain.versions) - 1; j >= 0; j-- {
				if _, ok, err := chain.versions[j].Get(tx.Key); err != nil {
					return nil, err
				} else if ok {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("fig7b: tx not found in chain")
			}
		}
		readTput := float64(reads) / time.Since(start).Seconds()
		readCells = append(readCells, f2(readTput/1000))
		writeCells = append(writeCells, f2(writeTput/1000))
		ReleaseVersions(chain.versions) // one store per block
	}
	t.AddRow("Read", readCells...)
	t.AddRow("Write", writeCells...)
	return t, nil
}
