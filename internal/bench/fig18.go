package bench

import "fmt"

// Fig18 reproduces Figure 18: the same four collaboration metrics as
// Figure 17, with the overlap ratio fixed at 50% and the write batch size
// swept instead. Larger batches produce fewer stored versions and rewrite a
// larger portion of the structure per batch, lowering both ratios.
func Fig18(sc Scale) ([]*Table, error) {
	// Batch sizes scale with the configured default: paper uses
	// 1000..16000 around a 4000 default.
	sizes := []int{sc.Batch / 4, sc.Batch / 2, sc.Batch, sc.Batch * 2, sc.Batch * 4}
	for i, s := range sizes {
		if s < 1 {
			sizes[i] = 1
		}
	}
	tables, err := collabTables(sc, "Figure 18", "Batch size",
		func(x int) (float64, int) { return 0.5, x }, sizes)
	if err != nil {
		return nil, err
	}
	for _, t := range tables {
		t.Note += fmt.Sprintf("; overlap fixed at 50%%, batch default %d", sc.Batch)
	}
	return tables, nil
}
