package bench

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/mbt"
	"repro/internal/mpt"
	"repro/internal/postree"
	"repro/internal/workload"
)

// Table3 reproduces Table 3: the effect of each structure's key parameter
// on its deduplication ratio under the collaboration workload — node size
// for POS-Tree, bucket count for MBT, and mean key length for MPT.
func Table3(sc Scale) ([]*Table, error) {
	pos, err := table3POS(sc)
	if err != nil {
		return nil, err
	}
	bkt, err := table3MBT(sc)
	if err != nil {
		return nil, err
	}
	keys, err := table3MPT(sc)
	if err != nil {
		return nil, err
	}
	return []*Table{pos, bkt, keys}, nil
}

// table3Dedup runs the collaboration scenario for one candidate and returns
// its deduplication ratio.
func table3Dedup(cand Candidate, sc Scale) (float64, error) {
	versions, err := collabRun(cand, sc, sc.CollabParties, 0.5, sc.Batch)
	if err != nil {
		return 0, err
	}
	defer ReleaseVersions(versions)
	st, err := core.AnalyzeVersions(versions...)
	if err != nil {
		return 0, err
	}
	return st.DedupRatio(), nil
}

func table3POS(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Table 3 (POS-Tree)",
		Title:   "deduplication ratio vs node size",
		XLabel:  "Node Size",
		Columns: []string{"η(POS-Tree)"},
	}
	for _, size := range []int{512, 1024, 2048, 4096} {
		size := size
		cand := Candidate{Name: "POS-Tree", New: func() (core.Index, error) {
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			return postree.New(s, postree.ConfigForNodeSize(size)), nil
		}}
		eta, err := table3Dedup(cand, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(strconv.Itoa(size), f3(eta))
	}
	return t, nil
}

func table3MBT(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Table 3 (MBT)",
		Title:   "deduplication ratio vs #buckets",
		XLabel:  "#Buckets",
		Columns: []string{"η(MBT)"},
	}
	// Bucket counts scale around the configured default (paper: 4k–10k).
	counts := []int{sc.MBTBuckets, sc.MBTBuckets * 3 / 2, sc.MBTBuckets * 2, sc.MBTBuckets * 5 / 2}
	for _, b := range counts {
		b := b
		cand := Candidate{Name: "MBT", New: func() (core.Index, error) {
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			return mbt.New(s, mbt.Config{Capacity: b, Fanout: 32})
		}}
		eta, err := table3Dedup(cand, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(strconv.Itoa(b), f3(eta))
	}
	return t, nil
}

// table3MPT sweeps the minimum key length, which shifts the mean key length
// the way the paper's datasets do.
func table3MPT(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "Table 3 (MPT)",
		Title:   "deduplication ratio vs mean key length",
		XLabel:  "Mean keylen",
		Columns: []string{"η(MPT)"},
	}
	for _, minLen := range []int{5, 11, 13, 15} {
		minLen := minLen
		// Longer minimum lengths raise the dataset's mean key length.
		y := workload.NewYCSB(workload.YCSBConfig{Records: sc.CollabInit, Seed: 17})
		pad := func(key []byte) []byte {
			for len(key) < minLen {
				key = append(key, byte('A'+len(key)%26))
			}
			return key
		}
		meanLen := 0
		initData := y.Dataset()
		for i := range initData {
			initData[i].Key = pad(initData[i].Key)
			meanLen += len(initData[i].Key)
		}
		meanLen /= len(initData)
		partyOps := workload.OverlapWorkload(y, sc.CollabParties, sc.CollabOps, 0.5, 1717)
		var versions []core.Index
		for p := 0; p < sc.CollabParties; p++ {
			ops := partyOps[p]
			for i := range ops {
				ops[i].Key = pad(ops[i].Key)
			}
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			var idx core.Index = mpt.New(s)
			head, err := LoadBatched(idx, initData, sc.Batch)
			if err != nil {
				return nil, err
			}
			versions = append(versions, head)
			more, err := versionedLoad(head, ops, sc.Batch)
			if err != nil {
				return nil, err
			}
			versions = append(versions, more...)
		}
		st, err := core.AnalyzeVersions(versions...)
		ReleaseVersions(versions)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", float64(meanLen)), f3(st.DedupRatio()))
	}
	return t, nil
}
