package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig15 reproduces Figure 15: storage usage and node counts on the Wiki
// dataset as versions accumulate. Checkpoints sample the union footprint of
// all versions so far.
func Fig15(sc Scale) ([]*Table, error) {
	cands := CandidateSet(sc)
	storage := &Table{
		ID:      "Figure 15(a)",
		Title:   "Wiki storage usage (MB)",
		XLabel:  "#Versions",
		Columns: candidateNames(cands),
	}
	nodes := &Table{
		ID:      "Figure 15(b)",
		Title:   "Wiki #nodes (x1000)",
		XLabel:  "#Versions",
		Columns: candidateNames(cands),
	}
	w := workload.NewWiki(workload.WikiConfig{
		Pages: sc.WikiPages, Versions: sc.WikiVersions,
		UpdatesPerVersion: sc.WikiUpdates, Seed: 7,
	})
	// Checkpoints at 1/3, 1/2, 2/3, 5/6 and all versions (paper: 100–300).
	v := sc.WikiVersions
	checkpoints := []int{v / 3, v / 2, 2 * v / 3, 5 * v / 6, v}

	type cells struct{ storage, nodes []string }
	perCand := make([]cells, len(cands))
	for ci, cand := range cands {
		idx, err := cand.New()
		if err != nil {
			return nil, err
		}
		head, err := LoadBatched(idx, w.Dataset(), sc.Batch)
		if err != nil {
			return nil, err
		}
		versions := []core.Index{head}
		cpi := 0
		for ver := 1; ver <= v; ver++ {
			head, err = head.PutBatch(w.VersionUpdates(ver))
			if err != nil {
				return nil, err
			}
			versions = append(versions, head)
			if cpi < len(checkpoints) && ver == checkpoints[cpi] {
				bytes, count, err := storageOf(versions)
				if err != nil {
					return nil, fmt.Errorf("fig15 %s: %w", cand.Name, err)
				}
				perCand[ci].storage = append(perCand[ci].storage, f2(MB(bytes)))
				perCand[ci].nodes = append(perCand[ci].nodes, f1(float64(count)/1000))
				cpi++
			}
		}
		ReleaseIndex(head)
	}
	for i, cp := range checkpoints {
		storageCells := make([]string, len(cands))
		nodeCells := make([]string, len(cands))
		for ci := range cands {
			storageCells[ci] = perCand[ci].storage[i]
			nodeCells[ci] = perCand[ci].nodes[i]
		}
		storage.AddRow(fmt.Sprint(cp), storageCells...)
		nodes.AddRow(fmt.Sprint(cp), nodeCells...)
	}
	return []*Table{storage, nodes}, nil
}
