package bench

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/forkbase"
	"repro/internal/hash"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

// overloadMults are the offered-load multipliers: 1× is the calibrated
// capacity concurrency, the rest drive the server past it.
var overloadMults = []int{1, 2, 4, 8}

// overloadBatch is the entries per write op — heavy enough that one request
// carries real commit work, so queueing delay (the thing shedding prevents)
// is measured in service times, not scheduler noise.
const overloadBatch = 256

// overloadShedBackoff is a shed worker's initial backoff; it doubles per
// consecutive shed up to overloadShedCap and resets on success. Modeled on
// the client's retry backoff: a shed is cheap for the server, but the fleet
// must not convert the fast-fail into a dial storm that competes for the
// CPU the admitted requests need.
const (
	overloadShedBackoff = 5 * time.Millisecond
	overloadShedCap     = 50 * time.Millisecond
)

// overloadArm is one measurement cell: a worker fleet hammering one servlet
// configuration for a fixed window.
type overloadArm struct {
	ok, shed, dead, other int64
	lat                   []time.Duration // successful ops only
	window                time.Duration
}

func (a overloadArm) goodput() float64 { return float64(a.ok) / a.window.Seconds() }
func (a overloadArm) shedRate() float64 {
	return float64(a.shed) / a.window.Seconds()
}
func (a overloadArm) deadRate() float64 {
	return float64(a.dead+a.other) / a.window.Seconds()
}

// p99ms formats the arm's p99 success latency; an arm whose goodput
// collapsed to zero has no distribution to report.
func (a overloadArm) p99ms() string {
	if len(a.lat) == 0 {
		return "-"
	}
	return f2(float64(Percentile(a.lat, 0.99)) / float64(time.Millisecond))
}

// OverloadExp measures the serving layer under sustained overload: goodput
// and p99 latency as the offered load climbs from 1× to 8× of the base
// concurrency, with the server's overload protection on (connection
// admission and the in-flight cap both bounded at the base concurrency, the
// excess answered with a fast retryable busy) versus off (everyone admitted,
// every request queued). Clients propagate their per-call budget either way,
// so the unprotected arm shows congestion collapse: admitted requests spend
// their budget queueing behind a server that cannot keep up, and are aborted
// server-side — or time out client-side — after burning a full deadline and
// a share of server work. The protected arm keeps the served population
// bounded, so the requests it does accept finish at near-capacity latency
// and the excess fails in a round trip instead of a deadline.
//
// The experiment reports what it measures and never fails on a ratio: the
// acceptance shape (shed-on goodput at 4× within 2× of its 1× peak,
// shed-off collapsing) is computed into the table note.
func OverloadExp(sc Scale) ([]*Table, error) {
	base := sc.OverloadBaseConns
	if base <= 0 {
		base = 4
	}
	window := time.Duration(sc.OverloadWindowMS) * time.Millisecond
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	n := sc.Ops
	if n <= 0 {
		n = 1000
	}

	s, err := sc.NewStore()
	if err != nil {
		return nil, err
	}
	cfg := postree.ConfigForNodeSize(sc.NodeSize)
	y := workload.NewYCSB(workload.YCSBConfig{Records: n, Seed: 10})
	idx, err := LoadBatched(postree.New(s, cfg), y.Dataset(), sc.Batch)
	if err != nil {
		return nil, fmt.Errorf("overload: load: %w", err)
	}
	loader := func(st store.Store, root hash.Hash, height int) core.Index {
		return postree.Load(st, cfg, root, height)
	}

	shedOn := forkbase.ServerOptions{MaxConns: base, MaxInflight: base}
	shedOff := forkbase.ServerOptions{MaxConns: -1, MaxInflight: -1}

	// Calibrate the propagated budget from the base-load latency: generous
	// enough that 1× traffic rarely trips it, tight enough that queueing a
	// few multiples deep exhausts it — which is exactly what a client-side
	// timeout means in production.
	calib, err := overloadCell(idx, loader, y, n, base, window, shedOn, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("overload: calibration: %w", err)
	}
	if len(calib.lat) == 0 {
		return nil, fmt.Errorf("overload: calibration made no successful op in %v", window)
	}
	budget := 3 * Percentile(calib.lat, 0.50)
	if budget < 15*time.Millisecond {
		budget = 15 * time.Millisecond
	}
	if budget > time.Second {
		budget = time.Second
	}

	goodput := &Table{
		ID:      "Overload(a)",
		Title:   "goodput under offered load (successful ops/s)",
		XLabel:  "offered",
		Columns: []string{"shed-on", "shed-off"},
	}
	p99 := &Table{
		ID:      "Overload(b)",
		Title:   "p99 latency of successful ops (ms)",
		XLabel:  "offered",
		Columns: []string{"shed-on", "shed-off"},
	}
	failures := &Table{
		ID:      "Overload(c)",
		Title:   "failed ops/s by cause",
		XLabel:  "offered",
		Columns: []string{"shed-on busy", "shed-on deadline", "shed-off busy", "shed-off deadline"},
	}

	var onByMult, offByMult []overloadArm
	for _, mult := range overloadMults {
		workers := mult * base
		on, err := overloadCell(idx, loader, y, n, workers, window, shedOn, budget)
		if err != nil {
			return nil, fmt.Errorf("overload: shed-on %dx: %w", mult, err)
		}
		off, err := overloadCell(idx, loader, y, n, workers, window, shedOff, budget)
		if err != nil {
			return nil, fmt.Errorf("overload: shed-off %dx: %w", mult, err)
		}
		onByMult, offByMult = append(onByMult, on), append(offByMult, off)
		x := fmt.Sprintf("%dx", mult)
		goodput.AddRow(x, f1(on.goodput()), f1(off.goodput()))
		p99.AddRow(x, on.p99ms(), off.p99ms())
		failures.AddRow(x,
			f1(on.shedRate()), f1(on.deadRate()),
			f1(off.shedRate()), f1(off.deadRate()))
	}

	// The acceptance shape, computed from the rows: shedding holds goodput
	// near the peak while the unprotected arm decays as every admitted
	// request outlives its budget. Peak is the best shed-on row — on a
	// noisy short window the 1× row is not always the fastest.
	var peak float64
	for _, a := range onByMult {
		if g := a.goodput(); g > peak {
			peak = g
		}
	}
	ratio := func(a overloadArm) float64 {
		if peak <= 0 {
			return 0
		}
		return 100 * a.goodput() / peak
	}
	note := fmt.Sprintf(
		"budget %v (3x the p50 at base load %d conns); at 4x offered load shedding holds %.0f%% of peak goodput (acceptance: >=50%%) vs %.0f%% unprotected; at 8x: %.0f%% vs %.0f%%. A shed costs one fast round trip; an unprotected failure burns its whole budget queueing first.",
		budget.Round(time.Millisecond), base,
		ratio(onByMult[2]), ratio(offByMult[2]),
		ratio(onByMult[3]), ratio(offByMult[3]))
	goodput.Note = note

	return []*Table{goodput, p99, failures}, nil
}

// overloadCell runs one fleet of closed-loop writers against a fresh
// servlet for one window and aggregates the outcome counters. budget is the
// per-op client deadline, propagated to the server as the request budget.
//
// Workers dial inside the measurement loop: under bounded admission only
// MaxConns of them hold a connection at once and the rest are shed at
// dial time, which is the mechanism under test. A worker that wins a
// connection keeps it; the client transparently redials if the connection
// dies, and an admission rejection on that redial surfaces as ErrBusy on
// the op, counted the same as a shed dial.
func overloadCell(idx core.Index, loader forkbase.Loader, y *workload.YCSB,
	records, workers int, window time.Duration,
	so forkbase.ServerOptions, budget time.Duration) (overloadArm, error) {

	srv := forkbase.NewServlet(idx).WithOptions(so)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return overloadArm{}, err
	}
	defer srv.Close()

	opts := forkbase.Options{
		Timeout:          budget,
		Retries:          -1, // one attempt per op: failures are the datum
		BreakerThreshold: -1, // keep offering load; the server is under test
	}

	arm := overloadArm{window: window}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ok, shed, dead, other int64
			var lat []time.Duration
			var cli *forkbase.Client
			defer func() {
				if cli != nil {
					cli.Close()
				}
			}()
			backoff := overloadShedBackoff
			classify := func(err error) {
				var ne net.Error
				switch {
				case errors.Is(err, forkbase.ErrBusy):
					shed++
					time.Sleep(backoff)
					if backoff *= 2; backoff > overloadShedCap {
						backoff = overloadShedCap
					}
				case errors.Is(err, forkbase.ErrBudgetExceeded):
					dead++ // server-side abort: the budget died in the queue
				case errors.As(err, &ne) && ne.Timeout():
					dead++ // client-side timeout: same cause, seen locally
				default:
					other++
					time.Sleep(time.Millisecond)
				}
			}
			batchLen := overloadBatch
			if batchLen > records {
				batchLen = records
			}
			<-start
			deadline := time.Now().Add(window)
			for k := 0; time.Now().Before(deadline); k++ {
				if cli == nil {
					c, err := forkbase.DialOptions(addr, loader, opts)
					if err != nil {
						classify(err)
						continue
					}
					cli = c
				}
				// Consecutive keys from a per-worker offset: every key in a
				// batch is distinct and batches from different ops overlap,
				// so commits keep rewriting live paths.
				batch := make([]core.Entry, batchLen)
				for j := range batch {
					id := (w*7919 + k*batchLen + j) % records
					batch[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, k)}
				}
				t0 := time.Now()
				err := cli.PutBatch(batch)
				if err == nil {
					ok++
					backoff = overloadShedBackoff
					lat = append(lat, time.Since(t0))
				} else {
					classify(err)
				}
			}
			mu.Lock()
			arm.ok += ok
			arm.shed += shed
			arm.dead += dead
			arm.other += other
			arm.lat = append(arm.lat, lat...)
			mu.Unlock()
		}(w)
	}
	close(start)
	wg.Wait()
	return arm, nil
}
