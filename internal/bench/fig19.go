package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/postree"
)

// ablationTables sweeps the overlap ratio for two POS-Tree configurations
// (the full tree and one with a SIRI property disabled) and reports the
// deduplication and node sharing ratios, as in Figures 19 and 20.
func ablationTables(sc Scale, figure string, onLabel, offLabel string, off postree.Ablation) ([]*Table, error) {
	dedup := &Table{
		ID:      figure + "(a)",
		Title:   "deduplication ratio",
		XLabel:  "Overlap Ratio (%)",
		Columns: []string{onLabel, offLabel},
	}
	sharing := &Table{
		ID:      figure + "(b)",
		Title:   "node sharing ratio",
		XLabel:  "Overlap Ratio (%)",
		Columns: []string{onLabel, offLabel},
	}
	mkCand := func(ab postree.Ablation) Candidate {
		return Candidate{Name: "POS-Tree", New: func() (core.Index, error) {
			s, err := sc.NewStore()
			if err != nil {
				return nil, err
			}
			cfg := postree.ConfigForNodeSize(sc.NodeSize)
			cfg.Ablation = ab
			return postree.New(s, cfg), nil
		}}
	}
	for _, ratio := range []int{10, 20, 40, 60, 80, 100} {
		var dedupCells, sharingCells []string
		for _, ab := range []postree.Ablation{postree.AblationNone, off} {
			versions, err := collabRun(mkCand(ab), sc, sc.CollabParties, float64(ratio)/100, sc.Batch)
			if err != nil {
				return nil, fmt.Errorf("%s ratio=%d: %w", figure, ratio, err)
			}
			st, err := core.AnalyzeVersions(versions...)
			ReleaseVersions(versions)
			if err != nil {
				return nil, err
			}
			dedupCells = append(dedupCells, f3(st.DedupRatio()))
			sharingCells = append(sharingCells, f3(st.NodeSharingRatio()))
		}
		dedup.AddRow(fmt.Sprint(ratio), dedupCells...)
		sharing.AddRow(fmt.Sprint(ratio), sharingCells...)
	}
	return []*Table{dedup, sharing}, nil
}

// Fig19 reproduces Figure 19: POS-Tree with the Structurally Invariant
// property disabled (fixed-size local splits instead of pattern-aware
// partitioning) loses deduplication and node sharing.
func Fig19(sc Scale) ([]*Table, error) {
	return ablationTables(sc, "Figure 19",
		"Structurally invariant", "Non-structurally-invariant",
		postree.AblationNoStructuralInvariance)
}
