package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// versionedLoad loads a dataset in batches and returns every version the
// loading produced (one per batch), newest last.
func versionedLoad(idx core.Index, entries []core.Entry, batch int) ([]core.Index, error) {
	versions := []core.Index{}
	for start := 0; start < len(entries); start += batch {
		end := start + batch
		if end > len(entries) {
			end = len(entries)
		}
		next, err := idx.PutBatch(entries[start:end])
		if err != nil {
			return nil, err
		}
		idx = next
		versions = append(versions, idx)
	}
	return versions, nil
}

// storageOf returns the union page footprint (bytes, node count) of a set
// of versions: what a system persisting all of them must store.
func storageOf(versions []core.Index) (int64, int, error) {
	st, err := core.AnalyzeVersions(versions...)
	if err != nil {
		return 0, 0, err
	}
	return st.UnionBytes, st.UnionNodes, nil
}

// Fig14 reproduces Figure 14: storage usage and number of nodes for
// single-group access (no cross-party sharing) as the dataset grows. All
// versions created during the batched load plus an update pass are counted.
func Fig14(sc Scale) ([]*Table, error) {
	cands := CandidateSet(sc)
	storage := &Table{
		ID:      "Figure 14(a)",
		Title:   "storage usage (MB), single group",
		XLabel:  "#Records",
		Columns: candidateNames(cands),
	}
	nodes := &Table{
		ID:      "Figure 14(b)",
		Title:   "#nodes (x1000), single group",
		XLabel:  "#Records",
		Columns: candidateNames(cands),
	}
	for _, n := range sc.YCSBCounts {
		y := workload.NewYCSB(workload.YCSBConfig{Records: n, WriteRatio: 1, Seed: 14})
		storageCells := make([]string, 0, len(cands))
		nodeCells := make([]string, 0, len(cands))
		for _, cand := range cands {
			idx, err := cand.New()
			if err != nil {
				return nil, err
			}
			versions, err := versionedLoad(idx, y.Dataset(), sc.Batch)
			if err != nil {
				ReleaseIndex(idx)
				return nil, err
			}
			// One update pass over the loaded data.
			head := versions[len(versions)-1]
			var updates []core.Entry
			for _, op := range y.Ops(sc.Ops) {
				if op.Write {
					updates = append(updates, op.Entry)
				}
			}
			moreVersions, err := versionedLoad(head, updates, sc.Batch)
			if err != nil {
				ReleaseIndex(idx)
				return nil, err
			}
			versions = append(versions, moreVersions...)
			bytes, count, err := storageOf(versions)
			ReleaseIndex(idx)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s: %w", cand.Name, err)
			}
			storageCells = append(storageCells, f2(MB(bytes)))
			nodeCells = append(nodeCells, f1(float64(count)/1000))
		}
		storage.AddRow(fmt.Sprint(n), storageCells...)
		nodes.AddRow(fmt.Sprint(n), nodeCells...)
	}
	return []*Table{storage, nodes}, nil
}
