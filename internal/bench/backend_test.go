package bench

import (
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// TestFig14AcrossBackends runs a storage figure end-to-end against every
// store backend — the same matrix cmd/siribench exposes via -store — and
// checks the figures are backend-independent: the deduplicated footprint a
// table reports must not depend on where the nodes live.
func TestFig14AcrossBackends(t *testing.T) {
	var baseline []*Table
	for _, backend := range store.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			sc := tinyScale()
			sc.Store = StoreConfig{Backend: backend, Dir: t.TempDir()}
			tables, err := Fig14(sc)
			if err != nil {
				t.Fatalf("fig14 with -store=%s: %v", backend, err)
			}
			if len(tables) != 2 || len(tables[0].Rows) == 0 {
				t.Fatalf("fig14 with -store=%s produced %d tables", backend, len(tables))
			}
			if baseline == nil {
				baseline = tables
				return
			}
			for ti, tb := range tables {
				for ri, r := range tb.Rows {
					for ci, c := range r.Cells {
						if want := baseline[ti].Rows[ri].Cells[ci]; c != want {
							t.Errorf("%s row %s col %s: %s backend reports %s, mem reports %s",
								tb.ID, r.X, tb.Columns[ci], backend, c, want)
						}
					}
				}
			}
		})
	}
}

// TestFig21DiskBackend drives the full Forkbase client/server path with
// disk-backed servlet storage and a small client cache.
func TestFig21DiskBackend(t *testing.T) {
	sc := tinyScale()
	sc.YCSBCounts = sc.YCSBCounts[:1]
	sc.Store = StoreConfig{Backend: store.BackendDisk, Dir: t.TempDir()}
	sc.ClientCacheBytes = 1 << 20
	tables, err := Fig21(sc)
	if err != nil {
		t.Fatalf("fig21 with -store=disk: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig21 produced %d tables", len(tables))
	}
}

// TestFig14CachedShardedBackend exercises the cache layering the -cache
// flag selects.
func TestFig14CachedShardedBackend(t *testing.T) {
	sc := tinyScale()
	sc.Store = StoreConfig{Backend: store.BackendSharded, Shards: 4, CacheBytes: 1 << 20}
	if _, err := Fig14(sc); err != nil {
		t.Fatalf("fig14 with sharded+cache: %v", err)
	}
}

// TestTrackedExperimentsReleaseDiskStores runs a figure that takes no
// per-cell release (fig15) through the registry wrapper with a disk
// backend and checks no segment directories survive the run.
func TestTrackedExperimentsReleaseDiskStores(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.Store = StoreConfig{Backend: store.BackendDisk, Dir: dir}
	exp, err := ByName("fig15")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(sc); err != nil {
		t.Fatal(err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "sirstore-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("experiment leaked %d store directories: %v", len(leftovers), leftovers)
	}
}

func TestNewStoreRejectsUnknownBackend(t *testing.T) {
	sc := tinyScale()
	sc.Store = StoreConfig{Backend: "bogus"}
	if _, err := sc.NewStore(); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
