package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment output: an x-axis label, one column per series,
// and one row per x value — matching the corresponding paper figure.
type Table struct {
	// ID names the paper artifact, e.g. "Figure 6(a)".
	ID string
	// Title describes the measurement and units.
	Title string
	// XLabel names the first column (the x axis).
	XLabel string
	// Columns are the series names (e.g. the four indexes).
	Columns []string
	// Rows hold the x value and one cell per column.
	Rows []Row
	// Note carries caveats (e.g. scaled-down parameters).
	Note string
}

// Row is one x value with its series cells.
type Row struct {
	X     string
	Cells []string
}

// AddRow appends a row; cells are formatted by the caller.
func (t *Table) AddRow(x string, cells ...string) {
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		cells := append([]string{r.X}, r.Cells...)
		for i, c := range cells {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(sb.String(), " "))
	}
	printRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range t.Rows {
		printRow(append([]string{r.X}, r.Cells...))
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// FprintAll renders a sequence of tables.
func FprintAll(w io.Writer, tables []*Table) {
	for _, t := range tables {
		t.Fprint(w)
	}
}

// f1, f2, f3 format floats with fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
