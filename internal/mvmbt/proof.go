package mvmbt

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hash"
)

// Prove implements core.Index: the proof holds the node encodings on the
// lookup path from the root to the leaf containing key.
func (t *Tree) Prove(key []byte) (*core.Proof, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	if t.root.IsNull() {
		return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
	}
	proof := &core.Proof{Key: key}
	h := t.root
	for level := t.height; level >= 1; level-- {
		raw, err := t.loadRaw(h)
		if err != nil {
			return nil, err
		}
		proof.Path = append(proof.Path, raw)
		if level == 1 {
			leaf, err := decodeLeaf(raw)
			if err != nil {
				return nil, err
			}
			i, found := searchEntries(leaf.entries, key)
			if !found {
				return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
			}
			proof.Value = leaf.entries[i].Value
			return proof, nil
		}
		n, err := decodeInternal(raw)
		if err != nil {
			return nil, err
		}
		i := searchRefs(n.refs, key)
		if i == len(n.refs) {
			return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
		}
		h = n.refs[i].h
	}
	return nil, fmt.Errorf("%w: %q", core.ErrNotFound, key)
}

// VerifyProof implements core.Index.
func (t *Tree) VerifyProof(root hash.Hash, proof *core.Proof) error {
	if proof == nil || len(proof.Path) == 0 {
		return fmt.Errorf("%w: empty proof", core.ErrInvalidProof)
	}
	expect := root
	for i, raw := range proof.Path {
		if hash.Of(raw) != expect {
			return fmt.Errorf("%w: node %d digest mismatch", core.ErrInvalidProof, i)
		}
		if len(raw) == 0 {
			return fmt.Errorf("%w: empty node", core.ErrInvalidProof)
		}
		last := i == len(proof.Path)-1
		if raw[0] == tagLeaf {
			if !last {
				return fmt.Errorf("%w: leaf before end of path", core.ErrInvalidProof)
			}
			leaf, err := decodeLeaf(raw)
			if err != nil {
				return fmt.Errorf("%w: %v", core.ErrInvalidProof, err)
			}
			j, found := searchEntries(leaf.entries, proof.Key)
			if !found || !bytes.Equal(leaf.entries[j].Value, proof.Value) {
				return fmt.Errorf("%w: leaf record mismatch", core.ErrInvalidProof)
			}
			return nil
		}
		if last {
			return fmt.Errorf("%w: path ends at internal node", core.ErrInvalidProof)
		}
		n, err := decodeInternal(raw)
		if err != nil {
			return fmt.Errorf("%w: %v", core.ErrInvalidProof, err)
		}
		j := searchRefs(n.refs, proof.Key)
		if j == len(n.refs) {
			return fmt.Errorf("%w: key outside subtree", core.ErrInvalidProof)
		}
		expect = n.refs[j].h
	}
	return fmt.Errorf("%w: path exhausted", core.ErrInvalidProof)
}
