package mvmbt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func smallCfg() Config { return ConfigForNodeSize(256) }

func entriesN(n int, seed int64) []core.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Entry, n)
	for i := range out {
		out[i] = core.Entry{
			Key:   []byte(fmt.Sprintf("key-%06d", i)),
			Value: []byte(fmt.Sprintf("value-%06d-%x", i, rng.Int63())),
		}
	}
	return out
}

func put(t *testing.T, idx core.Index, k, v string) core.Index {
	t.Helper()
	out, err := idx.Put([]byte(k), []byte(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, idx core.Index, k string) (string, bool) {
	t.Helper()
	v, ok, err := idx.Get([]byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

func TestEmptyTree(t *testing.T) {
	tr := New(store.NewMemStore(), smallCfg())
	if !tr.RootHash().IsNull() || tr.Height() != 0 {
		t.Fatal("empty tree not empty")
	}
	if _, ok := get(t, tr, "x"); ok {
		t.Fatal("found key in empty tree")
	}
}

func TestBuildAndGet(t *testing.T) {
	entries := entriesN(500, 1)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d", tr.Height())
	}
	for _, e := range entries {
		v, ok, err := tr.Get(e.Key)
		if err != nil || !ok || !bytes.Equal(v, e.Value) {
			t.Fatalf("Get(%q) = %q, %v, %v", e.Key, v, ok, err)
		}
	}
	if _, ok := get(t, tr, "zzz"); ok {
		t.Fatal("found key beyond max")
	}
	if n, _ := tr.Count(); n != len(entries) {
		t.Fatalf("Count = %d", n)
	}
}

func TestNodeSizesBounded(t *testing.T) {
	cfg := smallCfg()
	tr, err := Build(store.NewMemStore(), cfg, entriesN(2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.ReachStats(tr)
	if err != nil {
		t.Fatal(err)
	}
	avg := int(r.Bytes) / r.Nodes
	if avg > cfg.MaxLeafBytes*2 {
		t.Fatalf("average node %d bytes exceeds bound", avg)
	}
}

func TestModelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var idx core.Index = New(store.NewMemStore(), smallCfg())
	model := map[string]string{}
	for step := 0; step < 120; step++ {
		n := rng.Intn(25) + 1
		var entries []core.Entry
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%04d", rng.Intn(600))
			v := fmt.Sprintf("v%d-%d", step, i)
			entries = append(entries, core.Entry{Key: []byte(k), Value: []byte(v)})
		}
		var err error
		idx, err = idx.PutBatch(entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range core.SortEntries(entries) {
			model[string(e.Key)] = string(e.Value)
		}
		if step%4 == 0 {
			k := fmt.Sprintf("key-%04d", rng.Intn(600))
			idx, err = idx.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		probe := fmt.Sprintf("key-%04d", rng.Intn(600))
		got, ok := get(t, idx, probe)
		want, wantOK := model[probe]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("step %d: Get(%q) = %q,%v; want %q,%v", step, probe, got, ok, want, wantOK)
		}
	}
	n, err := idx.Count()
	if err != nil || n != len(model) {
		t.Fatalf("Count = %d, model %d", n, len(model))
	}
}

func TestIterateInKeyOrder(t *testing.T) {
	entries := entriesN(700, 4)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	tr.Iterate(func(k, _ []byte) bool { got = append(got, string(k)); return true })
	if len(got) != len(entries) || !sort.StringsAreSorted(got) {
		t.Fatalf("iterated %d entries, sorted=%v", len(got), sort.StringsAreSorted(got))
	}
}

func TestStructurallyVariant(t *testing.T) {
	// The baseline is NOT structurally invariant: inserting the same
	// entries in different batch shapes typically produces different
	// roots (the paper's Figure 2). We build one tree by bulk batch and
	// one by many single inserts.
	entries := entriesN(400, 5)
	s := store.NewMemStore()
	bulk, err := Build(s, smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var oneByOne core.Index = New(s, smallCfg())
	for _, e := range entries {
		oneByOne, err = oneByOne.Put(e.Key, e.Value)
		if err != nil {
			t.Fatal(err)
		}
	}
	if bulk.RootHash() == oneByOne.RootHash() {
		t.Fatal("baseline unexpectedly produced identical structures")
	}
	// Contents are nevertheless identical.
	diffs, err := bulk.Diff(oneByOne)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("content diff = %d entries", len(diffs))
	}
}

func TestCopyOnWriteSharing(t *testing.T) {
	entries := entriesN(500, 6)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	v2 := put(t, tr, "key-000250", "changed")
	st, err := core.AnalyzeVersions(tr, v2.(*Tree))
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeSharingRatio() < 0.3 {
		t.Fatalf("sharing = %v; same-lineage versions must share pages", st.NodeSharingRatio())
	}
}

func TestDeleteAndCount(t *testing.T) {
	entries := entriesN(100, 7)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var idx core.Index = tr
	for i := 0; i < 50; i++ {
		idx, err = idx.Delete(entries[i].Key)
		if err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := idx.Count(); n != 50 {
		t.Fatalf("Count = %d, want 50", n)
	}
	for i := 50; i < 100; i++ {
		if _, ok := get(t, idx, string(entries[i].Key)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestDeleteToEmpty(t *testing.T) {
	entries := entriesN(60, 8)
	tr, err := Build(store.NewMemStore(), smallCfg(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var idx core.Index = tr
	for _, e := range entries {
		idx, err = idx.Delete(e.Key)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !idx.RootHash().IsNull() {
		t.Fatal("tree not empty")
	}
}

func TestDiffMatchesModel(t *testing.T) {
	s := store.NewMemStore()
	base := entriesN(300, 9)
	a, err := Build(s, smallCfg(), base)
	if err != nil {
		t.Fatal(err)
	}
	var batch []core.Entry
	for i := 0; i < 20; i++ {
		batch = append(batch, core.Entry{
			Key:   []byte(fmt.Sprintf("key-%06d", i*13)),
			Value: []byte(fmt.Sprintf("new-%d", i)),
		})
	}
	b, err := a.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != len(batch) {
		t.Fatalf("got %d diffs, want %d", len(diffs), len(batch))
	}
}

func TestProveAndVerify(t *testing.T) {
	tr, err := Build(store.NewMemStore(), smallCfg(), entriesN(300, 10))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tr.Prove([]byte("key-000100"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.VerifyProof(tr.RootHash(), proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	proof.Value = []byte("forged")
	if err := tr.VerifyProof(tr.RootHash(), proof); !errors.Is(err, core.ErrInvalidProof) {
		t.Fatalf("forged proof accepted: %v", err)
	}
	if _, err := tr.Prove([]byte("nope")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Prove(missing) = %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := New(store.NewMemStore(), smallCfg())
	if _, err := tr.Put(nil, nil); !errors.Is(err, core.ErrEmptyKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeThroughCore(t *testing.T) {
	s := store.NewMemStore()
	base, err := Build(s, smallCfg(), entriesN(100, 11))
	if err != nil {
		t.Fatal(err)
	}
	left := put(t, base, "l", "1")
	right := put(t, base, "r", "2")
	merged, err := core.Merge(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := get(t, merged, "r"); !ok || got != "2" {
		t.Fatalf("merged[r] = %q, %v", got, ok)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	tr, err := Build(s, smallCfg(), entriesN(150, 12))
	if err != nil {
		t.Fatal(err)
	}
	re := Load(s, smallCfg(), tr.RootHash(), tr.Height())
	if v, ok, err := re.Get([]byte("key-000077")); err != nil || !ok || len(v) == 0 {
		t.Fatalf("reloaded Get = %q, %v, %v", v, ok, err)
	}
}
