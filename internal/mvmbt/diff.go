package mvmbt

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/hash"
)

// iter is a pull-based in-order entry iterator.
type iter struct {
	t      *Tree
	frames []iterFrame
	leaf   *leafNode
	idx    int
	done   bool
}

type iterFrame struct {
	n   *internalNode
	idx int
}

func newIter(t *Tree) (*iter, error) {
	it := &iter{t: t}
	if t.root.IsNull() {
		it.done = true
		return it, nil
	}
	if err := it.descend(t.root, t.height); err != nil {
		return nil, err
	}
	return it, nil
}

// descend pushes the leftmost path from h (at the given level) onto the
// stack and loads its leaf.
func (it *iter) descend(h hash.Hash, level int) error {
	for level > 1 {
		n, err := it.t.loadInternal(h)
		if err != nil {
			return err
		}
		it.frames = append(it.frames, iterFrame{n: n})
		h = n.refs[0].h
		level--
	}
	leaf, err := it.t.loadLeaf(h)
	if err != nil {
		return err
	}
	it.leaf, it.idx = leaf, 0
	return nil
}

func (it *iter) entry() core.Entry { return it.leaf.entries[it.idx] }

func (it *iter) advance() error {
	it.idx++
	if it.idx < len(it.leaf.entries) {
		return nil
	}
	// Move to the next leaf.
	for len(it.frames) > 0 {
		top := &it.frames[len(it.frames)-1]
		top.idx++
		if top.idx < len(top.n.refs) {
			level := it.t.height - len(it.frames) // level of the child
			return it.descend(top.n.refs[top.idx].h, level)
		}
		it.frames = it.frames[:len(it.frames)-1]
	}
	it.done = true
	return nil
}

// Diff implements core.Index by synchronized in-order iteration. The
// baseline has no structural invariance, so identical contents built along
// different histories do not share page boundaries and every record must be
// compared — the cost the paper's Figure 8 charges the baseline for.
func (t *Tree) Diff(other core.Index) ([]core.DiffEntry, error) {
	o, ok := other.(*Tree)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	a, err := newIter(t)
	if err != nil {
		return nil, err
	}
	b, err := newIter(o)
	if err != nil {
		return nil, err
	}
	var out []core.DiffEntry
	for !a.done || !b.done {
		switch {
		case b.done || (!a.done && bytes.Compare(a.entry().Key, b.entry().Key) < 0):
			e := a.entry()
			out = append(out, core.DiffEntry{Key: e.Key, Left: e.Value})
			if err := a.advance(); err != nil {
				return nil, err
			}
		case a.done || bytes.Compare(a.entry().Key, b.entry().Key) > 0:
			e := b.entry()
			out = append(out, core.DiffEntry{Key: e.Key, Right: e.Value})
			if err := b.advance(); err != nil {
				return nil, err
			}
		default:
			ea, eb := a.entry(), b.entry()
			if !bytes.Equal(ea.Value, eb.Value) {
				out = append(out, core.DiffEntry{Key: ea.Key, Left: ea.Value, Right: eb.Value})
			}
			if err := a.advance(); err != nil {
				return nil, err
			}
			if err := b.advance(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
