package mvmbt_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/core/indextest"
	"repro/internal/hash"
	"repro/internal/mvmbt"
	"repro/internal/store"
)

// conformanceConfig is the canonical configuration the golden root vector
// in indextest.CanonicalRoots is computed against.
func conformanceConfig() mvmbt.Config { return mvmbt.ConfigForNodeSize(512) }

// TestIndexConformance runs the shared index conformance suite against the
// MVMB+-Tree baseline over every store backend. The baseline is
// history-dependent (no structural invariance — the paper's Figure 2), but
// range scans are its native strength, so the pruning assertion applies.
func TestIndexConformance(t *testing.T) {
	indextest.RunIndexTests(t, "MVMB+-Tree", indextest.Options{
		New: func(s store.Store) (core.Index, error) {
			return mvmbt.New(s, conformanceConfig()), nil
		},
		Reopen: func(s store.Store, idx core.Index) (core.Index, error) {
			bt := idx.(*mvmbt.Tree)
			return mvmbt.Load(s, conformanceConfig(), bt.RootHash(), bt.Height()), nil
		},
		Loader: func(s store.Store, root hash.Hash, height int) (core.Index, error) {
			return mvmbt.Load(s, conformanceConfig(), root, height), nil
		},
		OrderedIterate:        true,
		PrunedRange:           true,
		StructurallyInvariant: false,
	})
}
