// Package mvmbt implements the paper's baseline index (§5.2): the
// Multi-Version Merkle B+-tree. It is an immutable, copy-on-write B+-tree
// whose child pointers are replaced by the cryptographic hashes of the
// children, with the hash→node table provided by the content-addressed
// store. Node sizes match the other candidates (~1KB).
//
// Unlike the SIRI candidates, MVMB+-Tree is NOT structurally invariant:
// nodes split at fixed size thresholds when they overflow, so the final
// shape depends on the order and batching of updates (the paper's Figure 2).
// It still enjoys copy-on-write sharing along update paths, which is why it
// is a strong baseline for storage, but identical logical contents built
// along different histories generally do not share pages.
package mvmbt

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/store"
)

// Node kind tags in the canonical encoding.
const (
	tagLeaf     = 1
	tagInternal = 2
)

// Config fixes the node-size thresholds.
type Config struct {
	// MaxLeafBytes splits a leaf that grows beyond this many bytes.
	MaxLeafBytes int
	// MaxFanout splits an internal node that exceeds this many children.
	MaxFanout int
}

// DefaultConfig matches the paper's ~1KB node tuning.
func DefaultConfig() Config { return Config{MaxLeafBytes: 1024, MaxFanout: 22} }

// ConfigForNodeSize derives thresholds for a target node size in bytes.
func ConfigForNodeSize(n int) Config {
	fan := n / 46 // ≈ bytes per (split key, hash) item
	if fan < 4 {
		fan = 4
	}
	return Config{MaxLeafBytes: n, MaxFanout: fan}
}

// ref points at a child node; splitKey is the maximum key in its subtree.
type ref struct {
	splitKey []byte
	h        hash.Hash
}

type leafNode struct {
	entries []core.Entry
}

type internalNode struct {
	refs []ref
}

// Tree is one immutable version of an MVMB+-Tree.
type Tree struct {
	s      store.Store
	cfg    Config
	root   hash.Hash
	height int
	// stage, when non-nil, is the active batch's staged writer: saves are
	// buffered there (and loadRaw serves them back) until the mutation
	// entry point flushes the whole batch in one store write.
	stage *core.StagedWriter
	// cache holds decoded internal nodes keyed by digest, shared by every
	// version derived from the same New/Load call, so lookups and range
	// scans resolve the hot upper levels without re-decoding; lcache does
	// the same for decoded leaves, so a warm Get allocates nothing.
	cache  *core.NodeCache[*internalNode]
	lcache *core.NodeCache[*leafNode]
}

// Compile-time interface checks.
var (
	_ core.Index       = (*Tree)(nil)
	_ core.NodeWalker  = (*Tree)(nil)
	_ core.CachePurger = (*Tree)(nil)
)

// New returns an empty tree over s.
func New(s store.Store, cfg Config) *Tree {
	return &Tree{s: s, cfg: cfg,
		cache:  core.NewNodeCache[*internalNode](0),
		lcache: core.NewNodeCache[*leafNode](0)}
}

// Load returns a tree view of an existing root in s.
func Load(s store.Store, cfg Config, root hash.Hash, height int) *Tree {
	return &Tree{s: s, cfg: cfg, root: root, height: height,
		cache:  core.NewNodeCache[*internalNode](0),
		lcache: core.NewNodeCache[*leafNode](0)}
}

// derive returns an empty tree value sharing the receiver's store, config,
// active stage and decoded-node caches — the base every edit builds its
// result on.
func (t *Tree) derive() *Tree {
	return &Tree{s: t.s, cfg: t.cfg, stage: t.stage, cache: t.cache, lcache: t.lcache}
}

// withStage returns a copy of t with a fresh staged writer attached, so
// every save inside the mutation is buffered for one commit-time flush.
func (t *Tree) withStage() *Tree {
	if t.stage != nil {
		return t
	}
	cp := *t
	cp.stage = core.NewStagedWriter(t.s)
	return &cp
}

// commitStage flushes the staged batch to the store and detaches the
// writer (returning it to the writer pool), making the receiver a fully
// committed version.
func (t *Tree) commitStage() *Tree {
	if t.stage != nil {
		t.stage.Flush()
		t.stage.Release()
		t.stage = nil
	}
	return t
}

// abandonStage drops an unflushed stage on an error path.
func (t *Tree) abandonStage() {
	if t.stage != nil {
		t.stage.Release()
		t.stage = nil
	}
}

// Build bulk-loads entries by batch insertion.
func Build(s store.Store, cfg Config, entries []core.Entry) (*Tree, error) {
	t := New(s, cfg)
	out, err := t.PutBatch(entries)
	if err != nil {
		return nil, err
	}
	return out.(*Tree), nil
}

// Name implements core.Index.
func (t *Tree) Name() string { return "MVMB+-Tree" }

// Store implements core.Index.
func (t *Tree) Store() store.Store { return t.s }

// RootHash implements core.Index.
func (t *Tree) RootHash() hash.Hash { return t.root }

// Height returns the number of levels; 0 when empty.
func (t *Tree) Height() int { return t.height }

// --- encoding ---

// encodeLeafTo appends a leaf node's canonical encoding.
func encodeLeafTo(w *codec.Writer, entries []core.Entry) {
	w.Byte(tagLeaf)
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.LenBytes(e.Key)
		w.LenBytes(e.Value)
	}
}

// encodeInternalTo appends an internal node's canonical encoding.
func encodeInternalTo(w *codec.Writer, refs []ref) {
	w.Byte(tagInternal)
	w.Uvarint(uint64(len(refs)))
	for _, r := range refs {
		w.LenBytes(r.splitKey)
		w.Bytes32(r.h[:])
	}
}

func encodeLeaf(n *leafNode) []byte {
	w := codec.NewWriter(64)
	encodeLeafTo(w, n.entries)
	return w.Bytes()
}

func encodeInternal(n *internalNode) []byte {
	w := codec.NewWriter(16 + len(n.refs)*(hash.Size+16))
	encodeInternalTo(w, n.refs)
	return w.Bytes()
}

func decodeLeaf(data []byte) (*leafNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagLeaf {
		return nil, fmt.Errorf("mvmbt: not a leaf node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	leaf := &leafNode{entries: make([]core.Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytes()
		if err != nil {
			return nil, err
		}
		v, err := r.LenBytes()
		if err != nil {
			return nil, err
		}
		leaf.entries = append(leaf.entries, core.Entry{Key: k, Value: v})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return leaf, nil
}

func decodeInternal(data []byte) (*internalNode, error) {
	r := codec.NewReader(data)
	tag, err := r.Byte()
	if err != nil || tag != tagInternal {
		return nil, fmt.Errorf("mvmbt: not an internal node (tag %d, %v)", tag, err)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	node := &internalNode{refs: make([]ref, 0, n)}
	for i := uint64(0); i < n; i++ {
		k, err := r.LenBytes()
		if err != nil {
			return nil, err
		}
		hb, err := r.Bytes32()
		if err != nil {
			return nil, err
		}
		node.refs = append(node.refs, ref{splitKey: k, h: hash.MustFromBytes(hb)})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return node, nil
}

// loadRaw fetches a node encoding, serving the active batch's unflushed
// writes first so editors can walk nodes they just produced (the raise
// collapse does).
func (t *Tree) loadRaw(h hash.Hash) ([]byte, error) {
	if t.stage != nil {
		if data, ok := t.stage.Lookup(h); ok {
			return data, nil
		}
	}
	data, ok := t.s.Get(h)
	if !ok {
		return nil, fmt.Errorf("%w: mvmbt node %v", core.ErrMissingNode, h)
	}
	return data, nil
}

// loadLeaf fetches and decodes the leaf at h, serving repeat visits from
// the shared decoded-leaf cache. Cached leaves are shared and read-only:
// the edit path merges into fresh slices (mergeEntries) rather than
// touching a loaded leaf's entries.
func (t *Tree) loadLeaf(h hash.Hash) (*leafNode, error) {
	return t.lcache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeLeaf)
}

// loadInternal fetches and decodes the internal node at h, serving repeat
// visits from the shared decoded-node cache. Cached nodes are shared and
// never mutated: the edit path builds fresh ref slices instead of touching
// a loaded node's refs.
func (t *Tree) loadInternal(h hash.Hash) (*internalNode, error) {
	return t.cache.Load(h, func() ([]byte, error) { return t.loadRaw(h) }, decodeInternal)
}

// saveLeaf / saveInternal encode and store a node — into the active batch's
// staged writer when one is attached, directly to the store otherwise.
// Both encode into pooled scratch writers (the staged writer and every
// store backend copy on insert), so saves allocate no encoding buffer.
func (t *Tree) saveLeaf(n *leafNode) ref {
	h := t.save(func(enc *codec.Writer) { encodeLeafTo(enc, n.entries) })
	return ref{splitKey: n.entries[len(n.entries)-1].Key, h: h}
}

func (t *Tree) saveInternal(n *internalNode) ref {
	h := t.save(func(enc *codec.Writer) { encodeInternalTo(enc, n.refs) })
	return ref{splitKey: n.refs[len(n.refs)-1].splitKey, h: h}
}

func (t *Tree) save(encode func(enc *codec.Writer)) hash.Hash {
	if t.stage != nil {
		return t.stage.PutFunc(encode)
	}
	w := codec.GetWriter()
	encode(w)
	h := t.s.Put(w.Bytes())
	w.Release()
	return h
}

// --- search ---

func searchRefs(refs []ref, key []byte) int {
	return sort.Search(len(refs), func(i int) bool {
		return bytes.Compare(refs[i].splitKey, key) >= 0
	})
}

func searchEntries(entries []core.Entry, key []byte) (int, bool) {
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].Key, key) >= 0
	})
	if i < len(entries) && bytes.Equal(entries[i].Key, key) {
		return i, true
	}
	return i, false
}

// Get implements core.Index.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, core.ErrEmptyKey
	}
	e, _, err := t.lookup(key)
	if err != nil || e == nil {
		return nil, false, err
	}
	return e.Value, true, nil
}

func (t *Tree) lookup(key []byte) (*core.Entry, int, error) {
	if t.root.IsNull() {
		return nil, 0, nil
	}
	h := t.root
	visited := 0
	for level := t.height; level > 1; level-- {
		n, err := t.loadInternal(h)
		if err != nil {
			return nil, visited, err
		}
		visited++
		i := searchRefs(n.refs, key)
		if i == len(n.refs) {
			return nil, visited, nil
		}
		h = n.refs[i].h
	}
	leaf, err := t.loadLeaf(h)
	if err != nil {
		return nil, visited, err
	}
	visited++
	if i, found := searchEntries(leaf.entries, key); found {
		return &leaf.entries[i], visited, nil
	}
	return nil, visited, nil
}

// PathLength implements core.Index.
func (t *Tree) PathLength(key []byte) (int, error) {
	if len(key) == 0 {
		return 0, core.ErrEmptyKey
	}
	_, visited, err := t.lookup(key)
	return visited, err
}

// Count implements core.Index.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Iterate(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Iterate implements core.Index, visiting entries in key order.
func (t *Tree) Iterate(fn func(key, value []byte) bool) error {
	if t.root.IsNull() {
		return nil
	}
	_, err := t.iterNode(t.root, t.height, fn)
	return err
}

func (t *Tree) iterNode(h hash.Hash, level int, fn func(key, value []byte) bool) (bool, error) {
	if level <= 1 {
		leaf, err := t.loadLeaf(h)
		if err != nil {
			return false, err
		}
		for _, e := range leaf.entries {
			if !fn(e.Key, e.Value) {
				return false, nil
			}
		}
		return true, nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return false, err
	}
	for _, r := range n.refs {
		ok, err := t.iterNode(r.h, level-1, fn)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// PurgeCache implements core.CachePurger: it evicts decoded internal nodes
// and leaves a GC pass swept from the family-shared caches.
func (t *Tree) PurgeCache(live func(hash.Hash) bool) int {
	dead := func(h hash.Hash) bool { return !live(h) }
	return t.cache.EvictIf(dead) + t.lcache.EvictIf(dead)
}

// Refs implements core.NodeWalker.
func (t *Tree) Refs(data []byte) ([]hash.Hash, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("mvmbt: empty node encoding")
	}
	if data[0] == tagLeaf {
		return nil, nil
	}
	n, err := decodeInternal(data)
	if err != nil {
		return nil, err
	}
	out := make([]hash.Hash, len(n.refs))
	for i, r := range n.refs {
		out[i] = r.h
	}
	return out, nil
}
