package mvmbt

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/hash"
)

// editOp is one mutation in a batch.
type editOp struct {
	key   []byte
	value []byte
	del   bool
}

// mergeEntries applies a sorted op run to a sorted entry run.
func mergeEntries(old []core.Entry, ops []editOp) []core.Entry {
	out := make([]core.Entry, 0, len(old)+len(ops))
	i, j := 0, 0
	for i < len(old) || j < len(ops) {
		switch {
		case j >= len(ops) || (i < len(old) && bytes.Compare(old[i].Key, ops[j].key) < 0):
			out = append(out, old[i])
			i++
		case i >= len(old) || bytes.Compare(old[i].Key, ops[j].key) > 0:
			if !ops[j].del {
				out = append(out, core.Entry{Key: ops[j].key, Value: ops[j].value})
			}
			j++
		default:
			if !ops[j].del {
				out = append(out, core.Entry{Key: ops[j].key, Value: ops[j].value})
			}
			i++
			j++
		}
	}
	return out
}

// Put implements core.Index.
func (t *Tree) Put(key, value []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	return t.PutBatch([]core.Entry{{Key: key, Value: value}})
}

// PutBatch implements core.Index: a single top-down descent applies all
// entries, splitting overflowing nodes at half their maximum size — the
// classic B+-tree behaviour whose order dependence Figure 2 illustrates.
func (t *Tree) PutBatch(entries []core.Entry) (core.Index, error) {
	if err := core.ValidateEntries(entries); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	ops := make([]editOp, 0, len(entries))
	for _, e := range core.SortEntries(entries) {
		// SortEntries already normalized nil values to empty.
		ops = append(ops, editOp{key: e.Key, value: e.Value})
	}
	return t.apply(ops)
}

// Delete implements core.Index. Underflowing nodes are not rebalanced (the
// baseline never merges), matching its role in the paper's experiments.
func (t *Tree) Delete(key []byte) (core.Index, error) {
	if len(key) == 0 {
		return nil, core.ErrEmptyKey
	}
	if _, ok, err := t.Get(key); err != nil {
		return nil, err
	} else if !ok {
		return t, nil
	}
	return t.apply([]editOp{{key: key, del: true}})
}

// apply runs a sorted op batch through the tree: the whole batch stages
// into one writer (baseline writes used to hit the store one Put at a
// time) and lands in a single flush at commit.
func (t *Tree) apply(ops []editOp) (*Tree, error) {
	st := t.withStage()
	nt, err := st.applyStaged(ops)
	if err != nil {
		if st != t {
			st.abandonStage()
		}
		return nil, err
	}
	return nt.commitStage(), nil
}

// applyStaged is the body of apply, running entirely against the
// receiver's staged writer.
func (t *Tree) applyStaged(ops []editOp) (*Tree, error) {
	nt := t.derive()
	if t.root.IsNull() {
		var fresh []core.Entry
		for _, op := range ops {
			if !op.del {
				fresh = append(fresh, core.Entry{Key: op.key, Value: op.value})
			}
		}
		if len(fresh) == 0 {
			return nt, nil
		}
		refs := nt.splitLeaf(fresh)
		return nt.raise(refs, 1)
	}
	refs, err := t.applyRoot(ops)
	if err != nil {
		return nil, err
	}
	return nt.raise(refs, t.height)
}

// applyRoot is applyRec at the root, with the affected child subtrees
// fanned across the staged writer's workers: the per-child op runs are
// disjoint key ranges, each child rewrite stages independently into the
// concurrency-safe writer, and the item run reassembles in child order, so
// the result is identical to the serial recursion.
func (t *Tree) applyRoot(ops []editOp) ([]ref, error) {
	workers := 1
	if t.stage != nil {
		workers = t.stage.Workers()
	}
	if workers <= 1 || t.height <= 1 {
		return t.applyRec(t.root, t.height, ops)
	}
	n, err := t.loadInternal(t.root)
	if err != nil {
		return nil, err
	}
	type childRun struct {
		ci  int
		ops []editOp
	}
	var runs []childRun
	opIdx := 0
	for ci, child := range n.refs {
		last := ci == len(n.refs)-1
		end := opIdx
		if last {
			end = len(ops)
		} else {
			for end < len(ops) && bytes.Compare(ops[end].key, child.splitKey) <= 0 {
				end++
			}
		}
		if end != opIdx {
			runs = append(runs, childRun{ci: ci, ops: ops[opIdx:end]})
		}
		opIdx = end
	}
	if len(runs) < 2 {
		return t.applyRec(t.root, t.height, ops)
	}
	repl := make([][]ref, len(n.refs))
	for ci := range n.refs {
		repl[ci] = n.refs[ci : ci+1] // untouched children pass through
	}
	errs := make([]error, len(runs))
	core.FanOut(workers, len(runs), func(k int) {
		run := runs[k]
		rs, err := t.applyRec(n.refs[run.ci].h, t.height-1, run.ops)
		if err != nil {
			errs[k] = err
			return
		}
		repl[run.ci] = rs
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var items []ref
	for _, rs := range repl {
		items = append(items, rs...)
	}
	if len(items) == 0 {
		return nil, nil
	}
	return t.splitInternal(items), nil
}

// raise builds internal levels above refs until a single root remains, then
// collapses single-child internal roots left behind by deletions.
func (t *Tree) raise(refs []ref, level int) (*Tree, error) {
	nt := t.derive()
	if len(refs) == 0 {
		return nt, nil
	}
	height := level
	for len(refs) > 1 {
		refs = t.splitInternal(refs)
		height++
	}
	root := refs[0].h
	for height > 1 {
		n, err := t.loadInternal(root)
		if err != nil {
			return nil, err
		}
		if len(n.refs) != 1 {
			break
		}
		root = n.refs[0].h
		height--
	}
	nt.root = root
	nt.height = height
	return nt, nil
}

// applyRec rewrites the subtree at h with ops, returning 0, 1 or more
// replacement refs (more than one when splits propagate).
func (t *Tree) applyRec(h hash.Hash, level int, ops []editOp) ([]ref, error) {
	if level == 1 {
		leaf, err := t.loadLeaf(h)
		if err != nil {
			return nil, err
		}
		merged := mergeEntries(leaf.entries, ops)
		if len(merged) == 0 {
			return nil, nil
		}
		return t.splitLeaf(merged), nil
	}
	n, err := t.loadInternal(h)
	if err != nil {
		return nil, err
	}
	var items []ref
	opIdx := 0
	for ci, child := range n.refs {
		last := ci == len(n.refs)-1
		end := opIdx
		if last {
			end = len(ops)
		} else {
			for end < len(ops) && bytes.Compare(ops[end].key, child.splitKey) <= 0 {
				end++
			}
		}
		if end == opIdx {
			items = append(items, child)
			continue
		}
		repl, err := t.applyRec(child.h, level-1, ops[opIdx:end])
		if err != nil {
			return nil, err
		}
		items = append(items, repl...)
		opIdx = end
	}
	if len(items) == 0 {
		return nil, nil
	}
	return t.splitInternal(items), nil
}

// splitLeaf cuts a sorted entry run into leaves of at most MaxLeafBytes,
// splitting at half the maximum when overflowing.
func (t *Tree) splitLeaf(entries []core.Entry) []ref {
	size := 0
	for _, e := range entries {
		size += len(e.Key) + len(e.Value) + 4
	}
	if size <= t.cfg.MaxLeafBytes {
		return []ref{t.saveLeaf(&leafNode{entries: entries})}
	}
	limit := t.cfg.MaxLeafBytes / 2
	var out []ref
	var pending []core.Entry
	acc := 0
	for _, e := range entries {
		pending = append(pending, e)
		acc += len(e.Key) + len(e.Value) + 4
		if acc >= limit {
			out = append(out, t.saveLeaf(&leafNode{entries: pending}))
			pending, acc = nil, 0
		}
	}
	if len(pending) > 0 {
		out = append(out, t.saveLeaf(&leafNode{entries: pending}))
	}
	return out
}

// splitInternal cuts a ref run into internal nodes of at most MaxFanout,
// splitting at half the maximum when overflowing.
func (t *Tree) splitInternal(refs []ref) []ref {
	if len(refs) <= t.cfg.MaxFanout {
		return []ref{t.saveInternal(&internalNode{refs: refs})}
	}
	limit := t.cfg.MaxFanout / 2
	if limit < 2 {
		limit = 2
	}
	var out []ref
	for start := 0; start < len(refs); start += limit {
		end := start + limit
		if end > len(refs) {
			end = len(refs)
		}
		out = append(out, t.saveInternal(&internalNode{refs: refs[start:end]}))
	}
	return out
}
