package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/version"
	"repro/internal/workload"
)

// runVersionVerb handles the `version log` and `version gc` subcommands: a
// self-contained demonstration of the version-management subsystem against
// the selected store backend. It builds a POS-Tree history of
// RetentionVersions committed versions (scale-sized), then either prints
// the commit log or runs a retention GC — on the disk backend with the
// on-disk footprint printed before and after compaction.
func runVersionVerb(w io.Writer, sc bench.Scale, verb string) error {
	switch verb {
	case "log", "gc", "verify":
	default:
		return fmt.Errorf("unknown version subcommand %q (want log, gc or verify)", verb)
	}
	sc, release := sc.WithStoreTracking()
	defer release()
	s, err := sc.NewStore()
	if err != nil {
		return err
	}
	repo := version.NewRepo(s)
	bench.RegisterLoaders(repo, sc)

	// Build the demo history: an initial load plus K−1 update batches,
	// one commit per version.
	y := workload.NewYCSB(workload.YCSBConfig{Records: sc.YCSBCounts[0], Seed: 17})
	var idx core.Index = postree.New(s, postree.ConfigForNodeSize(sc.NodeSize))
	idx, err = bench.LoadBatched(idx, y.Dataset(), sc.Batch)
	if err != nil {
		return err
	}
	if _, err := repo.Commit("main", idx, "initial load"); err != nil {
		return err
	}
	k := sc.RetentionVersions
	if k < 2 {
		k = 2
	}
	for v := 1; v < k; v++ {
		z := workload.NewZipfian(uint64(sc.YCSBCounts[0]), 0.5, int64(v)*97)
		updates := make([]core.Entry, sc.RetentionUpdates)
		for j := range updates {
			id := int(z.Next())
			updates[j] = core.Entry{Key: y.Key(id), Value: y.Value(id, v)}
		}
		if idx, err = idx.PutBatch(updates); err != nil {
			return err
		}
		if _, err := repo.Commit("main", idx, fmt.Sprintf("version %d", v)); err != nil {
			return err
		}
	}

	log, err := repo.Log("main")
	if err != nil {
		return err
	}
	printLog := func() {
		fmt.Fprintf(w, "branch main, %d commit(s), newest first:\n", len(log))
		for _, c := range log {
			parent := "(root)"
			if len(c.Parents) > 0 {
				parent = fmt.Sprintf("%x", c.Parents[0][:6])
			}
			fmt.Fprintf(w, "  %x  parent %-12s  %-12s  %s  %s\n",
				c.ID[:6], parent, c.Class, c.When().Format(time.TimeOnly), c.Message)
		}
	}
	printLog()
	if verb == "log" {
		return nil
	}
	if verb == "verify" {
		// Scrub after a retention GC, so the walk also crosses the shallow
		// boundary the pass leaves — the state a verify runs against in
		// practice.
		keep := sc.RetentionKeep
		if keep < 1 {
			keep = 1
		}
		if _, err := repo.GCRetainRecent(keep); err != nil {
			return err
		}
		start := time.Now()
		rep, err := repo.Verify()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nverify: %s in %v\n", rep, time.Since(start).Round(time.Microsecond))
		for _, f := range rep.Faults {
			fmt.Fprintf(w, "  %s\n", f)
		}
		if !rep.OK() {
			return fmt.Errorf("verify found %d damaged node(s)", len(rep.Faults))
		}
		return nil
	}

	keep := sc.RetentionKeep
	if keep < 1 {
		keep = 1
	}
	if keep > len(log) {
		keep = len(log)
	}
	retained := log[:keep]
	before := s.Stats()
	diskBefore, hasDisk := store.DiskUsageOf(s)
	fmt.Fprintf(w, "\ngc: retaining newest %d of %d commits\n", keep, len(log))
	gst, err := repo.GC(retained...)
	if err != nil {
		return err
	}
	after := s.Stats()
	fmt.Fprintf(w, "  %s\n", gst)
	fmt.Fprintf(w, "  store unique bytes: %d → %d (reclaimed %d)\n",
		before.UniqueBytes, after.UniqueBytes, before.UniqueBytes-after.UniqueBytes)
	if hasDisk {
		if diskAfter, ok := store.DiskUsageOf(s); ok {
			fmt.Fprintf(w, "  on-disk segment bytes: %d → %d (compacted %d segment(s))\n",
				diskBefore, diskAfter, gst.Store.SegmentsCompacted)
		}
	}
	log, err = repo.Log("main")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nafter gc:\n")
	printLog()
	return nil
}
