package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/version"
)

// runIngestVerb handles `siribench ingest demo`: a self-contained walk
// through the WAL-backed ingest front-end against the selected store
// backend. It streams scale-sized point writes through an ingest.Buffer
// with auto-merges, closes the buffer mid-stream with unmerged writes
// buffered, reopens it to demonstrate WAL replay, finishes the stream,
// merges, and scrubs the repo end to end. (The `ingest` experiment, by
// contrast, measures throughput/latency; this verb shows the machinery.)
func runIngestVerb(w io.Writer, sc bench.Scale) error {
	sc, release := sc.WithStoreTracking()
	defer release()
	s, err := sc.NewStore()
	if err != nil {
		return err
	}
	repo := version.NewRepo(s)
	bench.RegisterLoaders(repo, sc)

	dir, err := os.MkdirTemp("", "siri-ingest-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	writes := sc.IngestWrites
	if writes <= 0 {
		writes = 2000
	}
	mergeEvery := sc.IngestMergeEvery
	if mergeEvery <= 0 {
		mergeEvery = 1000
	}
	opts := ingest.Options{
		Dir: dir, Branch: "main",
		New: func(s store.Store) (core.Index, error) {
			return postree.New(s, postree.ConfigForNodeSize(sc.NodeSize)), nil
		},
		AutoMerge: true, MaxEntries: mergeEvery,
	}
	bu, err := ingest.Open(repo, opts)
	if err != nil {
		return err
	}

	key := func(i int) []byte { return []byte(fmt.Sprintf("ingest-%08d", i)) }
	val := func(i, gen int) []byte { return []byte(fmt.Sprintf("val-%08d-gen%d", i, gen)) }

	// Phase 1: two thirds of the stream, group-committing periodically.
	cut := writes * 2 / 3
	for i := 0; i < cut; i++ {
		if err := bu.Put(key(i), val(i, 0)); err != nil {
			return err
		}
		if (i+1)%256 == 0 {
			if err := bu.Flush(); err != nil {
				return err
			}
		}
	}
	if err := bu.Flush(); err != nil {
		return err
	}
	st := bu.Stats()
	fmt.Fprintf(w, "ingested %d writes: %d auto-merges, %d buffered in memtable, %d WAL segment(s)\n",
		cut, st.Merges, st.MemEntries, st.WALSegments)

	// Simulate a restart with unmerged writes buffered: close (flushes the
	// WAL, merges nothing) and reopen (replays).
	unmerged := st.MemEntries
	if err := bu.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "closed with %d unmerged write(s) in the WAL\n", unmerged)
	bu, err = ingest.Open(repo, opts)
	if err != nil {
		return err
	}
	defer bu.Close()
	fmt.Fprintf(w, "reopened: replayed %d of %d WAL record(s) (%d torn segment(s) repaired), high-water mark %d\n",
		bu.Replay.Replayed, bu.Replay.Records, bu.Replay.TornSegments, bu.Stats().MergedSeq)
	if got := bu.Stats().MemEntries; got != unmerged {
		return fmt.Errorf("replay rebuilt %d memtable entries, expected %d", got, unmerged)
	}

	// Phase 2: the rest of the stream, then fold everything in.
	for i := cut; i < writes; i++ {
		if err := bu.Put(key(i), val(i, 0)); err != nil {
			return err
		}
	}
	if err := bu.Flush(); err != nil {
		return err
	}
	// The final merge may find an empty memtable when an auto-merge just
	// tripped; either way everything is folded in afterwards.
	if _, _, err := bu.Merge(); err != nil {
		return err
	}
	if left := bu.Stats().MemEntries; left != 0 {
		return fmt.Errorf("final merge left %d entries buffered", left)
	}
	st = bu.Stats()
	n, err := bu.Count()
	if err != nil {
		return err
	}
	log, err := repo.Log("main")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "finished %d writes: %d merge commit(s) on main, %d key(s) in the index\n",
		writes, len(log), n)

	rep, err := repo.Verify()
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("scrub found damage: %v", rep.Faults)
	}
	fmt.Fprintf(w, "scrub: %s\n", rep)
	return nil
}
