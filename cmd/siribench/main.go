// Command siribench regenerates the tables and figures of "Analysis of
// Indexing Structures for Immutable Data" (SIGMOD 2020).
//
// Usage:
//
//	siribench [-scale small|medium|full] [-store mem|sharded|disk] [experiment ...]
//	siribench [flags] version log|gc|verify
//	siribench [flags] verify
//	siribench [flags] ingest demo
//	siribench -list
//
// With no experiment arguments every experiment runs in paper order. Output
// is a text table per figure/subfigure with the same rows and series the
// paper plots.
//
// Every experiment can run against each node-store backend: -store selects
// it (in-memory single-lock, in-memory sharded, or append-only segment
// files on disk), -shards and -storedir tune the latter two, and -cache
// layers a bounded LRU node cache over whichever backend is active.
//
// The version verbs demonstrate the version-management subsystem
// (internal/version): `version log` builds a scale-sized commit history and
// prints it; `version gc` additionally garbage-collects it down to the
// newest -retain commits and reports the space reclaimed — on -store=disk
// including the segment bytes returned by compaction. `verify` (also
// reachable as `version verify`) garbage-collects the history and then
// scrubs the reachable graph end to end — every commit blob and index page
// re-read and re-hashed — exiting non-zero if anything is damaged.
//
// `ingest demo` walks the WAL-backed ingest front-end (internal/ingest)
// end to end: stream -ingest point writes through the memtable with
// auto-merges, close mid-stream with unmerged writes buffered, reopen to
// demonstrate WAL replay, finish the stream, merge, and scrub. The bare
// `ingest` argument runs the throughput/latency experiment instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/store"
)

func main() {
	scaleName := flag.String("scale", "medium", "experiment scale: tiny, small, medium or full")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonPath := flag.String("json", "",
		"also write a machine-readable report (ops/s tables + store stats per experiment) to this path, e.g. BENCH_2.json")
	storeName := flag.String("store", store.BackendMem,
		"node store backend: "+strings.Join(store.Backends(), ", "))
	shards := flag.Int("shards", 0, "shard count for -store=sharded (0 = default)")
	storeDir := flag.String("storedir", "", "base directory for -store=disk segment files (default: OS temp dir)")
	cacheBytes := flag.Int64("cache", 0, "LRU node-cache bytes layered over the store backend (0 = no cache)")
	clientCache := flag.Int64("clientcache", 0,
		"forkbase client node-cache bytes for the system experiments (0 = paper default 64 MiB, negative = disabled)")
	retain := flag.Int("retain", 0,
		"commits to retain in the retention experiment and the `version gc` verb (0 = scale default)")
	ingestWrites := flag.Int("ingest", 0,
		"point writes for the ingest experiment and the `ingest demo` verb (0 = scale default)")
	overloadMS := flag.Int("overloadms", 0,
		"measurement window in milliseconds per overload-experiment cell (0 = scale default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: siribench [-scale small|medium|full] [-store mem|sharded|disk] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "       siribench [flags] version log|gc|verify\n")
		fmt.Fprintf(os.Stderr, "       siribench [flags] verify\n")
		fmt.Fprintf(os.Stderr, "       siribench [flags] ingest demo\n\n")
		fmt.Fprintf(os.Stderr, "flags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nexperiments (default: all):\n")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Desc)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale.Store = bench.StoreConfig{
		Backend:    *storeName,
		Shards:     *shards,
		Dir:        *storeDir,
		CacheBytes: *cacheBytes,
	}
	scale.ClientCacheBytes = *clientCache
	if *retain > 0 {
		scale.RetentionKeep = *retain
	}
	if *ingestWrites > 0 {
		scale.IngestWrites = *ingestWrites
	}
	if *overloadMS > 0 {
		scale.OverloadWindowMS = *overloadMS
	}
	// Reject unknown backends before hours of experiments start.
	if probe, err := scale.NewStore(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	} else {
		store.Release(probe)
	}

	if flag.NArg() > 0 && flag.Arg(0) == "version" {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: siribench [flags] version log|gc|verify")
			os.Exit(2)
		}
		if err := runVersionVerb(os.Stdout, scale, flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// `siribench ingest demo` walks the WAL-backed ingest front-end:
	// stream writes with auto-merges, close mid-stream, reopen (WAL
	// replay), finish, merge and scrub. Bare `ingest` stays the
	// throughput/latency experiment.
	if flag.NArg() == 2 && flag.Arg(0) == "ingest" {
		if flag.Arg(1) != "demo" {
			fmt.Fprintln(os.Stderr, "usage: siribench [flags] ingest demo")
			os.Exit(2)
		}
		if err := runIngestVerb(os.Stdout, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// `siribench verify` is shorthand for `version verify`: build the demo
	// history, GC it, then scrub the reachable graph end to end.
	if flag.NArg() == 1 && flag.Arg(0) == "verify" {
		if err := runVersionVerb(os.Stdout, scale, "verify"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var experiments []bench.Experiment
	if flag.NArg() == 0 {
		experiments = bench.Experiments()
	} else {
		for _, name := range flag.Args() {
			e, err := bench.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			experiments = append(experiments, e)
		}
	}

	storeDesc := *storeName
	if *cacheBytes > 0 {
		storeDesc += fmt.Sprintf("+%dB cache", *cacheBytes)
	}
	fmt.Printf("siribench: scale=%s, store=%s, %d experiment(s)\n\n", scale.Name, storeDesc, len(experiments))
	var report *bench.Report
	if *jsonPath != "" {
		report = bench.NewReport(scale.Name, storeDesc)
	}
	for _, e := range experiments {
		start := time.Now()
		var tables []*bench.Table
		var err error
		if report != nil {
			var stats store.Stats
			tables, stats, err = bench.RunWithStats(e, scale)
			if err == nil {
				report.Add(e, tables, stats, time.Since(start))
			}
		} else {
			tables, err = e.Run(scale)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		bench.FprintAll(os.Stdout, tables)
		fmt.Printf("[%s done in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if report != nil {
		if err := report.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("machine-readable report written to %s\n", *jsonPath)
	}
}
