// Command siribench regenerates the tables and figures of "Analysis of
// Indexing Structures for Immutable Data" (SIGMOD 2020).
//
// Usage:
//
//	siribench [-scale small|medium|full] [experiment ...]
//	siribench -list
//
// With no experiment arguments every experiment runs in paper order. Output
// is a text table per figure/subfigure with the same rows and series the
// paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium or full")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: siribench [-scale small|medium|full] [experiment ...]\n\n")
		fmt.Fprintf(os.Stderr, "experiments (default: all):\n")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Desc)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var experiments []bench.Experiment
	if flag.NArg() == 0 {
		experiments = bench.Experiments()
	} else {
		for _, name := range flag.Args() {
			e, err := bench.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			experiments = append(experiments, e)
		}
	}

	fmt.Printf("siribench: scale=%s, %d experiment(s)\n\n", scale.Name, len(experiments))
	for _, e := range experiments {
		start := time.Now()
		tables, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		bench.FprintAll(os.Stdout, tables)
		fmt.Printf("[%s done in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
