// Blockchain example: the paper's Ethereum scenario (§5.1.3). Each block of
// RLP-encoded transactions gets its own Merkle index; block roots chain into
// a tamper-evident ledger; reads scan the chain for a transaction and prove
// it against the block's root digest.
//
//	go run ./examples/blockchain
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/mpt"
	"repro/internal/store"
	"repro/internal/workload"
)

// blockHeader is a minimal chained header: the transaction index root plus
// the previous header's digest, so any historical tamper breaks the chain.
type blockHeader struct {
	number  uint64
	txRoot  hash.Hash
	prev    hash.Hash
	digest  hash.Hash
	txIndex core.Index
}

func sealHeader(number uint64, txRoot, prev hash.Hash) hash.Hash {
	var num [8]byte
	for i := 0; i < 8; i++ {
		num[i] = byte(number >> (8 * i))
	}
	return hash.Of(num[:], txRoot[:], prev[:])
}

func main() {
	// Ethereum uses the Merkle Patricia Trie for its transaction tries.
	s := store.NewMemStore()
	gen := workload.NewEthereum(workload.EthConfig{Blocks: 20, TxPerBlock: 80, Seed: 3})

	var chain []blockHeader
	prev := hash.Null
	for i := 0; i < 20; i++ {
		block := gen.BlockAt(i)
		idx, err := mpt.New(s).PutBatch(block.Txs)
		if err != nil {
			log.Fatal(err)
		}
		h := blockHeader{
			number:  block.Number,
			txRoot:  idx.RootHash(),
			prev:    prev,
			txIndex: idx,
		}
		h.digest = sealHeader(h.number, h.txRoot, h.prev)
		prev = h.digest
		chain = append(chain, h)
	}
	fmt.Printf("built %d blocks; head digest %v\n", len(chain), prev)

	// Look up a transaction the way the paper's experiment does: scan the
	// chain from the newest block, then traverse that block's index.
	target := gen.BlockAt(7).Txs[3]
	for i := len(chain) - 1; i >= 0; i-- {
		value, ok, err := chain[i].txIndex.Get(target.Key)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		fmt.Printf("tx %s… found in block %d (%d-byte RLP payload)\n",
			target.Key[:12], chain[i].number, len(value))

		// A light client verifies the transaction against the block's
		// committed root without trusting the full node.
		proof, err := chain[i].txIndex.Prove(target.Key)
		if err != nil {
			log.Fatal(err)
		}
		if err := chain[i].txIndex.VerifyProof(chain[i].txRoot, proof); err != nil {
			log.Fatal(err)
		}
		fmt.Println("inclusion proof verified against the block's tx root")
		break
	}

	// Verify chain integrity end to end; then tamper with one block and
	// watch verification fail.
	verify := func() error {
		prev := hash.Null
		for _, h := range chain {
			if sealHeader(h.number, h.txRoot, prev) != h.digest {
				return fmt.Errorf("block %d: header digest mismatch", h.number)
			}
			prev = h.digest
		}
		return nil
	}
	if err := verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain verified:", len(chain), "headers linked")

	tampered, err := chain[7].txIndex.Put(target.Key, []byte("rewritten history"))
	if err != nil {
		log.Fatal(err)
	}
	chain[7].txRoot = tampered.RootHash() // forged root, stale header chain
	if err := verify(); err != nil {
		fmt.Println("tamper detected:", err)
	}

	st := s.Stats()
	fmt.Printf("store: %d unique nodes across all block tries (%d KB)\n",
		st.UniqueNodes, st.UniqueBytes/1024)
}
