// Quickstart: build an immutable, tamper-evident index; read, write, diff
// and merge versions; and verify a Merkle proof.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
)

func main() {
	// Every index lives in a content-addressed node store. Identical
	// pages — within a version or across versions — are stored once.
	s := store.NewMemStore()

	// A POS-Tree with ~1KB nodes, the paper's recommended index.
	var v1 core.Index = postree.New(s, postree.DefaultConfig())

	// Mutations are copy-on-write: each returns a new version and the old
	// one stays valid forever.
	v1, err := v1.PutBatch([]core.Entry{
		{Key: []byte("alice"), Value: []byte("owes bob 10")},
		{Key: []byte("bob"), Value: []byte("owes carol 5")},
		{Key: []byte("carol"), Value: []byte("settled")},
	})
	if err != nil {
		log.Fatal(err)
	}
	v2, err := v1.Put([]byte("alice"), []byte("settled"))
	if err != nil {
		log.Fatal(err)
	}

	// Both versions are live; they share all unmodified pages.
	old, _, _ := v1.Get([]byte("alice"))
	cur, _, _ := v2.Get([]byte("alice"))
	fmt.Printf("alice@v1 = %q, alice@v2 = %q\n", old, cur)

	// The root hash is a digest over the full contents: equal contents ⇒
	// equal roots (structural invariance), any change ⇒ a new root.
	fmt.Printf("root v1 = %v\nroot v2 = %v\n", v1.RootHash(), v2.RootHash())

	// Diff reports exactly what changed between two versions.
	diffs, err := v1.Diff(v2)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diffs {
		fmt.Printf("diff: %q: %q -> %q\n", d.Key, d.Left, d.Right)
	}

	// Merge combines divergent versions; conflicting keys abort unless a
	// resolver is supplied.
	v3a, _ := v2.Put([]byte("dave"), []byte("new account"))
	v3b, _ := v2.Put([]byte("erin"), []byte("new account"))
	merged, err := core.Merge(v3a, v3b, nil)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := merged.Count()
	fmt.Printf("merged version holds %d records\n", n)

	// Tamper evidence: prove a record against the trusted root digest.
	proof, err := merged.Prove([]byte("dave"))
	if err != nil {
		log.Fatal(err)
	}
	if err := merged.VerifyProof(merged.RootHash(), proof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("proof for \"dave\" verified against root digest")

	// Tampering is detected.
	proof.Value = []byte("forged balance")
	if err := merged.VerifyProof(merged.RootHash(), proof); err != nil {
		fmt.Println("forged proof rejected:", err)
	}

	// The store deduplicates shared pages across all versions.
	st := s.Stats()
	fmt.Printf("store: %d unique nodes, %d bytes (raw writes: %d nodes)\n",
		st.UniqueNodes, st.UniqueBytes, st.RawNodes)
}
