// Collaboration example: the paper's diverse-group scenario (§5.4.2). Teams
// fork a shared dataset, edit independently — including overlapping cleanup
// work — and merge back. Structural invariance makes the shared pages
// deduplicate and the overlapping edits converge to identical subtrees.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	s := store.NewMemStore()
	y := workload.NewYCSB(workload.YCSBConfig{Records: 5000, Seed: 12})

	// The curated base dataset every team starts from.
	base, err := postree.Build(s, postree.DefaultConfig(), y.Dataset())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base dataset: 5000 records, root %v\n", base.RootHash())

	// Two teams work on overlapping slices: both normalize records
	// 1000–1999 identically (shared cleanup scripts), and each edits a
	// private range as well.
	normalize := func(from core.Index, lo, hi int) core.Index {
		var batch []core.Entry
		for i := lo; i < hi; i++ {
			batch = append(batch, core.Entry{Key: y.Key(i), Value: y.Value(i, 777)})
		}
		out, err := from.PutBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	teamA := normalize(normalize(base, 1000, 2000), 3000, 3500) // shared + private
	teamB := normalize(normalize(base, 1000, 2000), 4000, 4600) // shared + private

	// The overlapping edits produced *identical pages*: measure sharing.
	st, err := core.AnalyzeVersions(base, teamA, teamB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("across base + 2 forks: dedup ratio %.3f, node sharing %.3f\n",
		st.DedupRatio(), st.NodeSharingRatio())

	// Diff each fork against base to review the change sets.
	da, _ := base.Diff(teamA)
	db, _ := base.Diff(teamB)
	fmt.Printf("team A changed %d records; team B changed %d records\n", len(da), len(db))

	// Three-way merge: the convergent normalization is not a conflict;
	// private ranges are disjoint, so the merge is clean.
	merged, err := core.Merge3(base, teamA, teamB, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged root %v\n", merged.RootHash())

	// Divergent edits to the same key do conflict — resolve explicitly.
	confA, _ := teamA.Put(y.Key(42), []byte("team A says X"))
	confB, _ := teamB.Put(y.Key(42), []byte("team B says Y"))
	if _, err := core.Merge3(base, confA, confB, nil); err != nil {
		fmt.Println("conflict surfaced as expected:", err)
	}
	resolved, err := core.Merge3(base, confA, confB, core.TakeRight)
	if err != nil {
		log.Fatal(err)
	}
	v, _, _ := resolved.Get(y.Key(42))
	fmt.Printf("resolved record: %q\n", v)

	// Structural invariance: rebuilding the merged contents from scratch
	// reproduces the merged root bit for bit.
	var entries []core.Entry
	if err := merged.Iterate(func(k, v []byte) bool {
		entries = append(entries, core.Entry{Key: append([]byte{}, k...), Value: append([]byte{}, v...)})
		return true
	}); err != nil {
		log.Fatal(err)
	}
	rebuilt, err := postree.Build(s, postree.DefaultConfig(), entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("from-scratch rebuild matches merged root: %v\n",
		rebuilt.RootHash() == merged.RootHash())
}
