// Wiki history example: the paper's versioned-corpus scenario (§5.1.2). A
// page collection evolves over many versions; every version stays readable,
// storage is deduplicated across versions, and any two versions can be
// diffed instantly thanks to hash-pruned comparison.
//
//	go run ./examples/wikihistory
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/postree"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	s := store.NewMemStore()
	w := workload.NewWiki(workload.WikiConfig{
		Pages: 3000, Versions: 30, UpdatesPerVersion: 100, Seed: 9,
	})

	head, err := postree.Build(s, postree.DefaultConfig(), w.Dataset())
	if err != nil {
		log.Fatal(err)
	}

	// Keep every version — the whole point of an immutable index.
	versions := []core.Index{head}
	for v := 1; v <= 30; v++ {
		next, err := versions[len(versions)-1].PutBatch(w.VersionUpdates(v))
		if err != nil {
			log.Fatal(err)
		}
		versions = append(versions, next)
	}
	fmt.Printf("kept %d versions of a %d-page corpus\n", len(versions), 3000)

	// Time travel: read the same page at version 0 and at head.
	key := w.Key(123)
	v0, _, _ := versions[0].Get(key)
	vN, _, _ := versions[30].Get(key)
	fmt.Printf("page %.40s…\n  @v0:  %d bytes\n  @v30: %d bytes\n", key, len(v0), len(vN))

	// Diff two arbitrary versions: only divergent subtrees are visited.
	diffs, err := versions[10].Diff(versions[20])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v10 → v20: %d pages changed\n", len(diffs))

	// Storage economics: 31 full versions cost barely more than one.
	st, err := core.AnalyzeVersions(versions...)
	if err != nil {
		log.Fatal(err)
	}
	one, err := core.ReachStats(versions[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all versions: %.1f MB stored (one version alone: %.1f MB)\n",
		float64(st.UnionBytes)/(1<<20), float64(one.Bytes)/(1<<20))
	fmt.Printf("deduplication ratio across versions: %.3f\n", st.DedupRatio())

	// Every version remains provable against its own root digest.
	proof, err := versions[15].Prove(key)
	if err != nil {
		log.Fatal(err)
	}
	if err := versions[15].VerifyProof(versions[15].RootHash(), proof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("historical record proven against version 15's root digest")
}
