// Package repro is a from-scratch Go reproduction of "Analysis of Indexing
// Structures for Immutable Data" (Yue et al., SIGMOD 2020): the three SIRI
// index structures — Merkle Patricia Trie, Merkle Bucket Tree and
// Pattern-Oriented-Split Tree — plus the MVMB+-Tree baseline, a Prolly Tree,
// a Forkbase-style client/server engine, the paper's workload generators,
// and a benchmark harness regenerating every table and figure of the
// evaluation. Node storage is pluggable: in-memory (single-lock or
// sharded) and append-only on-disk backends share one content-addressed
// store contract, selectable per experiment via siribench's -store flag.
// See README.md for a tour of the layout and the store backend matrix.
package repro
