// Package repro is a from-scratch Go reproduction of "Analysis of Indexing
// Structures for Immutable Data" (Yue et al., SIGMOD 2020): the three SIRI
// index structures — Merkle Patricia Trie, Merkle Bucket Tree and
// Pattern-Oriented-Split Tree — plus the MVMB+-Tree baseline, a Prolly Tree,
// a Forkbase-style client/server engine, the paper's workload generators,
// and a benchmark harness regenerating every table and figure of the
// evaluation. See README.md for a tour and DESIGN.md for the system map.
package repro
