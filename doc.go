// Package repro is a from-scratch Go reproduction of "Analysis of Indexing
// Structures for Immutable Data" (Yue et al., SIGMOD 2020): the three SIRI
// index structures — Merkle Patricia Trie, Merkle Bucket Tree and
// Pattern-Oriented-Split Tree — plus the MVMB+-Tree baseline, a Prolly Tree,
// a Forkbase-style client/server engine, the paper's workload generators,
// and a benchmark harness regenerating every table and figure of the
// evaluation. Node storage is pluggable: in-memory (single-lock or
// sharded) and append-only on-disk backends share one content-addressed
// store contract, selectable per experiment via siribench's -store flag.
//
// Writes follow a stage → commit → batch-flush pipeline: batch updates
// mutate decoded in-memory nodes (MPT on a dirty overlay, MBT and
// POS-Tree through a staged writer), the nodes reachable from the final
// root are encoded and hashed exactly once at commit, and the whole batch
// lands in the store through one store.Batcher.PutBatch call. Reads go
// through a per-index decoded-node LRU so hot upper levels are parsed
// once. See README.md ("The write path") for details, the store backend
// matrix, and the layout tour.
//
// The query surface is point lookups (Get), full scans (Iterate) and
// ordered bounded scans: core.Ranger's Range(lo, hi, fn) visits the
// half-open interval [lo, hi) in ascending key order with nil bounds
// unbounded. All five indexes implement it — the ordered structures by
// pruning subtrees outside the bounds (O(log N + result) node reads), the
// hash-partitioned MBT by clipping every bucket and merging — and
// core.RangeOf falls back to a filtered sorted Iterate for any foreign
// index. The behavioural contract for all of this is pinned by the shared
// conformance suite in core/indextest, run for every index over every
// store backend.
package repro
